package inband

import (
	"fmt"

	"repro/internal/agent"
	"repro/internal/asic"
	"repro/internal/core"
	"repro/internal/endhost"
	"repro/internal/faults"
	"repro/internal/guard"
	"repro/internal/mem"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/tcam"
	"repro/internal/topo"
	"repro/internal/verify"
)

// histTenant is the tenant the RTT-histogram workload runs as: its
// writer and collector NICs seal this identity and verify against the
// tenant's grant, so every TPP the workload emits is provably
// admissible before it enters the fabric.
const histTenant guard.TenantID = 7

// HistConfig parameterizes the RTT-histogram scenario.  Zero values
// select the canonical run via DefaultHist.
type HistConfig struct {
	Seed     int64
	Duration netsim.Time

	// RTT sampling: one probe every SampleEvery from SampleFrom until
	// SampleUntil, leaving the tail of the run for the writer to drain
	// and the collector to observe the settled window.
	SampleFrom, SampleEvery, SampleUntil netsim.Time

	// SweepEvery paces the collector (first sweep after one period).
	SweepEvery netsim.Time

	// RebootAt crash-restarts the histogram's home switch; zero
	// disables the crash.
	RebootAt, BootDelay netsim.Time

	// Bursty loss window on the writer-side fabric link, exercising
	// probe retransmission and CSTORE duplicate detection.
	LossFrom, LossTo netsim.Time

	// Probe bounds every probe attempt in the scenario.
	Probe endhost.ProbeConfig
}

// DefaultHist is the canonical scenario: 2 simulated seconds over a
// two-leaf, one-spine fabric; RTT sampled every 5ms for 1.2s with
// bursty cross traffic varying queueing delay; a 200ms bursty-loss
// window on the writer's fabric link; one spine crash-restart at 600ms.
func DefaultHist(seed int64) HistConfig {
	return HistConfig{
		Seed:       seed,
		Duration:   2 * netsim.Second,
		SampleFrom: 20 * netsim.Millisecond,
		SampleEvery: 5 * netsim.Millisecond,
		SampleUntil: 1200 * netsim.Millisecond,
		SweepEvery:  100 * netsim.Millisecond,
		RebootAt:    600 * netsim.Millisecond,
		BootDelay:   10 * netsim.Millisecond,
		LossFrom:    300 * netsim.Millisecond,
		LossTo:      500 * netsim.Millisecond,
		Probe: endhost.ProbeConfig{
			Timeout: 25 * netsim.Millisecond, Retries: 3, Backoff: 2},
	}
}

// HistResult is the scenario's observable outcome: plain values only,
// so two runs with the same config compare wholesale for determinism.
// The per-bucket arrays share obs bucket indexing (bucket i counts
// samples in [obs.BucketLow(i), obs.BucketHigh(i)]).
type HistResult struct {
	// Ground truth (host-measured RTT samples) vs the dataplane.
	Samples    uint64
	Truth      [obs.NumBuckets]uint64 // host-side histogram
	FinalSRAM  [obs.NumBuckets]uint64 // switch window read directly at the end
	Current    [obs.NumBuckets]uint64 // collector's current-epoch view
	Cumulative [obs.NumBuckets]uint64 // collector's across-wipes accumulation
	// CapturedAtWipe is the window read just before the crash wiped it:
	// the commits whose SRAM evidence the reboot destroyed.
	CapturedAtWipe [obs.NumBuckets]uint64

	TruthTotal, CurrentTotal, CumulativeTotal, CapturedTotal uint64

	// CSTORE reconciliation: switch counter == metric == span count,
	// and CurrentTotal + CapturedTotal == SwitchCommits.
	SwitchCommits uint64
	CommitMetric  int64
	CommitSpans   int

	// Sweep reconciliation: collector count == metric == span count,
	// and the folded metric equals the cumulative total.
	Sweeps           uint64
	SweepsMetric     int64
	SweepSpans       int
	FoldedMetric     int64
	SweepFolded      []uint64 // per-sweep folded counts, in order
	Discontinuities  uint64
	IncompleteChunks uint64

	// Writer protocol counters.
	Applied, Duplicates, Adopted, Inconclusive uint64
	Rebases, WriterFailures                    uint64
	AppliedMetric                              int64
	Retransmits                                uint64
	Drained                                    bool
	Pending                                    uint64

	// Environment health: the guard denied nothing (the workload is
	// verified against its own grant), the NICs rejected nothing, the
	// tracer wrapped nothing.
	Reboots      uint64
	Denied       uint64
	NICRejected  uint64
	SpansDropped uint64
}

// RunHist executes the RTT-histogram scenario: end-host TPPs
// CSTORE-bucket measured RTTs into the spine's SRAM, a collector
// sweeps the window, and one crash-restart in the middle proves the
// accounting is exact across the wipe.
func RunHist(cfg HistConfig) HistResult {
	if cfg.Duration <= 0 {
		cfg = DefaultHist(cfg.Seed)
	}
	sim := netsim.New(cfg.Seed)
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(1 << 19)

	// Two leaves, one spine; the spine is the histogram's home switch
	// and the only traced one, so span reconciliation is exact.
	n := topo.NewNetwork(sim)
	spine := n.AddSwitch(asic.Config{Ports: 8, Metrics: reg, Trace: tracer, Guard: true})
	leaves := []*asic.Switch{
		n.AddSwitch(asic.Config{Ports: 8, Metrics: reg}),
		n.AddSwitch(asic.Config{Ports: 8, Metrics: reg}),
	}
	n.SetTrace(nil) // switch spans only; channels stay untraced

	fabric := topo.Mbps(10, 10*netsim.Microsecond)
	edge := topo.Mbps(20, 10*netsim.Microsecond)
	// Leaf i's port 0 climbs to the spine; spine port i descends to
	// leaf i.
	for _, leaf := range leaves {
		n.LinkSwitches(leaf, spine, fabric)
	}
	addHost := func(leaf int) *endhost.Host {
		h := n.AddHost()
		n.LinkHost(h, leaves[leaf], edge)
		return h
	}
	writerHost := addHost(0) // measures RTTs, drives the window
	collHost := addHost(0)   // sweeps the window
	bgHost := addHost(0)     // bursty cross traffic varying queue delay
	targetHost := addHost(1) // probes transit the spine to reach it
	sinkHost := addHost(1)   // cross-traffic sink

	// Deterministic dst-routing, so forwarding never depends on learned
	// L2 state a crash would wipe.
	for li, leaf := range leaves {
		_ = leaf
		for _, h := range n.Hosts {
			at := n.AttachmentOf(h)
			v, m := tcam.DstIPRule(h.IP)
			if at.Switch == leaves[li] {
				leaves[li].TCAM().Insert(100, v, m, tcam.Action{OutPort: at.Port})
			} else {
				leaves[li].TCAM().Insert(10, v, m, tcam.Action{OutPort: 0})
			}
		}
	}
	for li, leaf := range leaves {
		for _, h := range n.Hosts {
			if n.AttachmentOf(h).Switch == leaf {
				v, m := tcam.DstIPRule(h.IP)
				spine.TCAM().Insert(10, v, m, tcam.Action{OutPort: li})
			}
		}
	}

	// The workload's tenant grant on the home switch; grants are
	// config and survive the crash, the partition's contents do not.
	grant, err := spine.GrantTenant(histTenant, guard.DefaultACL(), 2*obs.NumBuckets, 1, 8)
	if err != nil {
		panic(fmt.Sprintf("inband: GrantTenant: %v", err))
	}
	// The window is tenant-relative bucket 0..NumBuckets-1: the guard
	// relocates SRAMBase+i into the partition.
	spec := HistSpec{SwitchID: spine.ID(), Base: mem.SRAMBase, Buckets: obs.NumBuckets}
	seal := func(h *endhost.Host) {
		h.NIC.SetTenant(uint8(histTenant))
		h.NIC.SetVerifier(&verify.Config{Grant: &grant}, nil)
	}
	seal(writerHost)
	seal(collHost)

	writerProber := endhost.NewProber(writerHost)
	writerProber.SetDefaults(cfg.Probe)
	writer := NewHistWriter(WriterConfig{
		Prober: writerProber, DstMAC: targetHost.MAC, DstIP: targetHost.IP,
		Spec: spec, Probe: cfg.Probe, Metrics: reg,
	})

	collProber := endhost.NewProber(collHost)
	collProber.SetDefaults(cfg.Probe)
	coll := NewCollector(CollectorConfig{
		Prober: collProber, DstMAC: targetHost.MAC, DstIP: targetHost.IP,
		Spec: spec, Metrics: reg, Tracer: tracer,
		Now: func() int64 { return int64(sim.Now()) },
	})
	sim.Every(cfg.SweepEvery, cfg.SweepEvery, func() { coll.Sweep() })

	// RTT sampling: a 1-instruction probe measures the round trip on
	// the host clock; the sample goes to both the host-side truth
	// histogram and the dataplane writer.
	truth := obs.NewHistogram()
	measure := func() *core.TPP {
		tpp := core.NewTPP(core.AddrStack, []core.Instruction{
			{Op: core.OpLOAD, A: uint16(mem.SwitchBase + mem.SwitchID), B: 0},
		}, 1)
		tpp.SetWord(0, 0)
		return tpp
	}
	sim.Every(cfg.SampleFrom, cfg.SampleEvery, func() {
		if sim.Now() > cfg.SampleUntil {
			return
		}
		t0 := sim.Now()
		writerProber.ProbeCfg(targetHost.MAC, targetHost.IP, measure(), cfg.Probe,
			func(*core.TPP) {
				rtt := uint64(sim.Now() - t0)
				truth.Observe(rtt)
				writer.Observe(rtt)
			}, nil)
	})

	// Bursty cross traffic through the spine, so sampled RTTs spread
	// across several power-of-two buckets.
	tick := 0
	sim.Every(20*netsim.Millisecond, 10*netsim.Millisecond, func() {
		if sim.Now() > cfg.SampleUntil {
			return
		}
		tick++
		for i := 0; i < (tick*7)%13; i++ {
			bgHost.Send(bgHost.NewPacket(sinkHost.MAC, sinkHost.IP, 9000, 9001, 400))
		}
	})

	// Fault plan: a bursty-loss window on the writer's fabric link and
	// one spine crash.
	inj := faults.NewInjector(sim, tracer)
	inj.RegisterSwitch("spine", spine)
	inj.RegisterLink("leaf0-spine",
		leaves[0].Port(0).Channel(), spine.Port(0).Channel())
	var events []faults.Event
	if cfg.LossTo > cfg.LossFrom {
		events = append(events,
			faults.Event{At: cfg.LossFrom, Kind: faults.LinkBurstyLoss, Target: "leaf0-spine",
				PGoodBad: 0.01, PBadGood: 0.1, LossGood: 0.005, LossBad: 0.5},
			faults.Event{At: cfg.LossTo, Kind: faults.ClearLoss, Target: "leaf0-spine"})
	}
	if cfg.RebootAt > 0 {
		events = append(events, faults.Event{At: cfg.RebootAt, Kind: faults.SwitchReboot,
			Target: "spine", BootDelay: cfg.BootDelay})
	}
	if len(events) > 0 {
		if err := inj.Schedule(faults.Plan{Seed: cfg.Seed, Events: events}); err != nil {
			panic(fmt.Sprintf("inband: bad fault plan: %v", err))
		}
	}

	var res HistResult
	physBase := grant.Partition.Base
	readWindow := func(dst *[obs.NumBuckets]uint64) {
		for i := 0; i < obs.NumBuckets; i++ {
			dst[i] = uint64(spine.SRAM(mem.SRAMIndex(physBase + mem.Addr(i))))
		}
	}
	if cfg.RebootAt > 0 {
		// Capture W(τ⁻), the window the instant before the crash: the
		// injector's reboot event was scheduled at setup, so at
		// RebootAt it sorts before every packet event and no commit can
		// slip between this capture and the wipe.
		sim.RunUntil(cfg.RebootAt - 1)
		readWindow(&res.CapturedAtWipe)
	}
	sim.RunUntil(cfg.Duration)

	// Harvest.
	readWindow(&res.FinalSRAM)
	res.Samples = writer.Samples
	for i := 0; i < obs.NumBuckets; i++ {
		res.Truth[i] = truth.Bucket(i)
		res.Current[i] = uint64(coll.CurrentBucket(i))
		res.Cumulative[i] = coll.CumulativeBucket(i)
		res.TruthTotal += res.Truth[i]
		res.CurrentTotal += res.Current[i]
		res.CumulativeTotal += res.Cumulative[i]
		res.CapturedTotal += res.CapturedAtWipe[i]
	}
	res.SwitchCommits = spine.CStoreCommits()
	res.Sweeps = coll.Sweeps()
	for _, p := range coll.Series {
		res.SweepFolded = append(res.SweepFolded, p.Folded)
	}
	res.Discontinuities = coll.Discontinuities()
	res.IncompleteChunks = coll.Incomplete
	res.Applied = writer.Applied
	res.Duplicates = writer.Duplicates
	res.Adopted = writer.Adopted
	res.Inconclusive = writer.Inconclusive
	res.Rebases = writer.Rebases
	res.WriterFailures = writer.Failures
	res.Retransmits = writerProber.Retransmits + collProber.Retransmits
	res.Drained = writer.Drained()
	res.Pending = writer.PendingSamples()
	res.Reboots = spine.Reboots()
	res.Denied = spine.TPPsDenied()
	res.NICRejected = writerHost.NIC.Rejected + collHost.NIC.Rejected
	res.SpansDropped = tracer.Dropped()

	for _, ev := range tracer.Events() {
		switch {
		case ev.Stage == obs.StageCStore && ev.Node == spine.ID():
			res.CommitSpans++
		case ev.Stage == obs.StageSweep && ev.Node == spine.ID():
			res.SweepSpans++
		}
	}
	snap := reg.Snapshot(int64(sim.Now()))
	if m, ok := snap.Get(fmt.Sprintf("switch/%d/cstore_commits", spine.ID())); ok {
		res.CommitMetric = m.Value
	}
	if m, ok := snap.Get("inband/collector/sweeps"); ok {
		res.SweepsMetric = m.Value
	}
	if m, ok := snap.Get("inband/collector/folded"); ok {
		res.FoldedMetric = m.Value
	}
	if m, ok := snap.Get("inband/writer/applied"); ok {
		res.AppliedMetric = m.Value
	}
	return res
}

// SpinConfig parameterizes the spin-bit scenario.
type SpinConfig struct {
	Seed     int64
	Duration netsim.Time
	// MaxFlips bounds the ping-pong exchange.
	MaxFlips int
	// SweepFrom starts the collector sweeps; DefaultSpin places it
	// after the flow quiesces so sweep probes never queue behind flow
	// packets and perturb the intervals being measured.
	SweepFrom, SweepEvery netsim.Time
}

// DefaultSpin is the canonical run: 400 flips over a 3-switch line
// with deterministic server think-time variation, swept after the flow
// completes.
func DefaultSpin(seed int64) SpinConfig {
	return SpinConfig{
		Seed:      seed,
		Duration:  2 * netsim.Second,
		MaxFlips:  400,
		SweepFrom: 1500 * netsim.Millisecond,
		SweepEvery: 50 * netsim.Millisecond,
	}
}

// SpinResult is the spin scenario's observable outcome.
type SpinResult struct {
	Flips      uint64
	Truth      [obs.NumBuckets]uint64 // client-measured flip intervals
	SRAM       [obs.NumBuckets]uint64 // observer's window, read directly
	Current    [obs.NumBuckets]uint64 // collector's swept view
	Cumulative [obs.NumBuckets]uint64

	TruthTotal uint64

	// Observer reconciliation: switch accessors == metrics == spans.
	Edges         uint64
	Samples       uint64
	EdgesMetric   int64
	SamplesMetric int64
	EdgeSpans     int

	Sweeps          uint64
	SweepSpans      int
	Discontinuities uint64
	SpansDropped    uint64
}

// RunSpin executes the spin-bit scenario: a ping-pong flow drives the
// spin bit across a 3-switch line, the middle switch passively infers
// every RTT interval from bit transitions alone, and a collector
// sweeps the resulting SRAM histogram after the flow quiesces.  Under
// constant per-hop delay (no loss, no competing traffic, equal-size
// packets) the observer's intervals equal the client's exactly, so the
// dataplane histogram matches ground truth bucket-for-bucket.
func RunSpin(cfg SpinConfig) SpinResult {
	if cfg.Duration <= 0 {
		cfg = DefaultSpin(cfg.Seed)
	}
	sim := netsim.New(cfg.Seed)
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(1 << 19)

	// A 3-switch line, observer in the middle — built by hand so only
	// the observer carries the tracer.
	n := topo.NewNetwork(sim)
	sws := []*asic.Switch{
		n.AddSwitch(asic.Config{Ports: 4, Metrics: reg}),
		n.AddSwitch(asic.Config{Ports: 4, Metrics: reg, Trace: tracer}),
		n.AddSwitch(asic.Config{Ports: 4, Metrics: reg}),
	}
	n.SetTrace(nil)
	backbone := topo.Mbps(100, 10*netsim.Microsecond)
	edge := topo.Mbps(100, 10*netsim.Microsecond)
	n.LinkSwitches(sws[0], sws[1], backbone)
	n.LinkSwitches(sws[1], sws[2], backbone)
	client := n.AddHost()
	server := n.AddHost()
	n.LinkHost(client, sws[0], edge)
	n.LinkHost(server, sws[2], edge)
	mid := sws[1]

	// The observer's window comes from the control-plane agent, like
	// any other network task's SRAM.
	ag := agent.New(sws...)
	task, err := ag.Register("inband/spin", obs.NumBuckets, 0)
	if err != nil {
		panic(fmt.Sprintf("inband: agent.Register: %v", err))
	}
	mid.WatchSpin(client.IP, server.IP, task.Region.Base)

	n.PrimeL2(5 * netsim.Millisecond)

	flow := NewSpinFlow(SpinFlowConfig{
		Client: client, Server: server,
		// Deterministic think-time variation spreads intervals across
		// buckets: 100µs + {0..28}*37µs.
		ReplyDelay: func(i int) netsim.Time {
			return 100*netsim.Microsecond + netsim.Time((i*37)%29)*37*netsim.Microsecond
		},
		MaxFlips:   cfg.MaxFlips,
		PayloadLen: 200,
	})
	flow.Start()

	collProber := endhost.NewProber(client)
	collProber.SetDefaults(endhost.ProbeConfig{
		Timeout: 25 * netsim.Millisecond, Retries: 2, Backoff: 2})
	coll := NewCollector(CollectorConfig{
		Prober: collProber, DstMAC: server.MAC, DstIP: server.IP,
		Spec:    HistSpec{SwitchID: mid.ID(), Base: task.Region.Base, Buckets: obs.NumBuckets},
		Metrics: reg, Tracer: tracer, Name: "spincollector",
		Now: func() int64 { return int64(sim.Now()) },
	})
	sim.Every(cfg.SweepFrom, cfg.SweepEvery, func() { coll.Sweep() })

	sim.RunUntil(cfg.Duration)

	var res SpinResult
	res.Flips = flow.Flips
	for i := 0; i < obs.NumBuckets; i++ {
		res.Truth[i] = flow.Truth.Bucket(i)
		res.SRAM[i] = uint64(mid.SRAM(mem.SRAMIndex(task.Region.Base + mem.Addr(i))))
		res.Current[i] = uint64(coll.CurrentBucket(i))
		res.Cumulative[i] = coll.CumulativeBucket(i)
		res.TruthTotal += res.Truth[i]
	}
	res.Edges = mid.SpinEdges(client.IP, server.IP)
	res.Samples = mid.SpinSamples(client.IP, server.IP)
	res.Sweeps = coll.Sweeps()
	res.Discontinuities = coll.Discontinuities()
	res.SpansDropped = tracer.Dropped()
	for _, ev := range tracer.Events() {
		switch {
		case ev.Stage == obs.StageSpinEdge && ev.Node == mid.ID():
			res.EdgeSpans++
		case ev.Stage == obs.StageSweep && ev.Node == mid.ID():
			res.SweepSpans++
		}
	}
	snap := reg.Snapshot(int64(sim.Now()))
	if m, ok := snap.Get(fmt.Sprintf("switch/%d/spin_edges", mid.ID())); ok {
		res.EdgesMetric = m.Value
	}
	if m, ok := snap.Get(fmt.Sprintf("switch/%d/spin_samples", mid.ID())); ok {
		res.SamplesMetric = m.Value
	}
	return res
}
