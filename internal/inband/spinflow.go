package inband

import (
	"repro/internal/core"
	"repro/internal/endhost"
	"repro/internal/netsim"
	"repro/internal/obs"
)

// Spin flow UDP ports: data carries the client's spin bit toward the
// server, reply carries it reflected back.
const (
	SpinDataPort  = 7090
	SpinReplyPort = 7091
)

// SpinFlowConfig wires a SpinFlow to its two endpoints.
type SpinFlowConfig struct {
	Client, Server *endhost.Host
	// ReplyDelay is the server's think time before reflecting packet i
	// (nil for immediate reflection); deterministic variation here
	// spreads the flow's RTT across histogram buckets.
	ReplyDelay func(i int) netsim.Time
	// MaxFlips bounds the exchange; the flow stops after that many
	// spin transitions.
	MaxFlips int
	// PayloadLen pads every data and reply packet to the same size, so
	// serialization delay is constant and intervals compare exactly.
	PayloadLen int
}

// SpinFlow is the endpoint half of the QUIC-style spin-bit protocol:
// the client sends a data packet carrying its spin value in the TOS
// core.SpinBit, the server reflects the bit, and when the client sees
// its own current value come back — one full round trip — it flips the
// bit and sends again.  Every client→server packet is therefore an
// edge, and the interval between consecutive edges at any on-path
// vantage point equals the client's flip interval: the flow's RTT,
// observable at a switch (asic.Switch.WatchSpin) from the single bit
// with zero cooperation beyond this protocol.
//
// The client records its own flip intervals into Truth — the ground
// truth the dataplane observer is reconciled against bucket-for-bucket.
type SpinFlow struct {
	cfg      SpinFlowConfig
	bit      uint8
	lastFlip netsim.Time
	stopped  bool
	replies  int

	// Flips counts spin transitions; Truth holds the client-measured
	// interval histogram.
	Flips uint64
	Truth *obs.Histogram
}

// NewSpinFlow claims the spin ports on both hosts.
func NewSpinFlow(cfg SpinFlowConfig) *SpinFlow {
	f := &SpinFlow{cfg: cfg, Truth: obs.NewHistogram()}
	cfg.Server.Handle(SpinDataPort, f.onData)
	cfg.Client.Handle(SpinReplyPort, f.onReply)
	return f
}

// Start anchors the flip clock and sends the first data packet (spin
// value 0 — matching the observer's convention of anchoring on the
// first packet seen).
func (f *SpinFlow) Start() {
	f.lastFlip = f.cfg.Client.Sim.Now()
	f.send()
}

// Done reports whether the flow has completed its MaxFlips exchanges.
func (f *SpinFlow) Done() bool { return f.stopped }

func (f *SpinFlow) send() {
	pkt := f.cfg.Client.NewPacket(f.cfg.Server.MAC, f.cfg.Server.IP,
		SpinReplyPort, SpinDataPort, f.cfg.PayloadLen)
	pkt.IP.TOS |= f.bit
	f.cfg.Client.Send(pkt)
}

// onData is the server: reflect the received spin value after the
// configured think time.
func (f *SpinFlow) onData(pkt *core.Packet) {
	i := f.replies
	f.replies++
	bit := pkt.IP.TOS & core.SpinBit
	reflect := func() {
		r := f.cfg.Server.NewPacket(f.cfg.Client.MAC, f.cfg.Client.IP,
			SpinDataPort, SpinReplyPort, f.cfg.PayloadLen)
		r.IP.TOS |= bit
		f.cfg.Server.Send(r)
	}
	var d netsim.Time
	if f.cfg.ReplyDelay != nil {
		d = f.cfg.ReplyDelay(i)
	}
	if d > 0 {
		f.cfg.Server.Sim.After(d, reflect)
	} else {
		reflect()
	}
}

// onReply is the client: seeing its own current spin value reflected
// completes a round trip — record the interval, flip, send the next
// edge.  The final edge packet is still sent after MaxFlips so the
// on-path observer sees every interval the client recorded; its
// reflection is then ignored.
func (f *SpinFlow) onReply(pkt *core.Packet) {
	if f.stopped {
		return
	}
	if pkt.IP.TOS&core.SpinBit != f.bit {
		return // stale reflection of a pre-flip packet
	}
	now := f.cfg.Client.Sim.Now()
	f.Truth.Observe(uint64(now - f.lastFlip))
	f.Flips++
	f.lastFlip = now
	f.bit ^= core.SpinBit
	f.send()
	if f.cfg.MaxFlips > 0 && f.Flips >= uint64(f.cfg.MaxFlips) {
		f.stopped = true
	}
}
