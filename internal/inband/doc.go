// Package inband is the dataplane-computed telemetry plane: network
// measurements that are *taken by the dataplane itself* — TPPs
// CSTORE-bucketing samples into switch SRAM counters, and fixed-function
// spin-bit observers inferring RTT from a single alternating header
// bit — rather than computed host-side by the simulator as internal/obs
// does.
//
// Three pieces compose:
//
//   - HistWriter: an end-host that folds its measured RTT samples into a
//     power-of-two histogram living in a switch's SRAM, one verified,
//     tenant-stamped CSTORE TPP per increment.  The writer is the single
//     writer of its window, which turns CSTORE's compare-and-store into
//     an exactly-once increment protocol: a lost echo is retried and the
//     retry's observed value proves whether the first attempt applied,
//     and the switch's boot epoch (read atomically in the same TPP)
//     proves whether a crash wiped the window, in which case the writer
//     re-bases and replays so the current epoch's SRAM converges back to
//     the full sample multiset.
//
//   - Collector: a control-plane end-host that periodically sweeps the
//     window with gated LOAD TPPs (epoch and values read atomically per
//     chunk) and folds the sweeps through agent.RegionPoller into
//     obs.Histogram accumulations with the same discontinuity semantics
//     as accounting.Counter.Poll: a wiped word re-bases, deltas are
//     never negative.
//
//   - The spin-bit observer (asic.Switch.WatchSpin): a passive,
//     fixed-function comparator that infers a flow's RTT entirely at the
//     switch from core.SpinBit transitions, bucketing edge intervals
//     into an SRAM window with zero end-host cooperation; SpinFlow is
//     the endpoint protocol driving the bit.
//
// Everything buckets with obs.BucketOf, so dataplane histograms and
// host-side ground truth are comparable bucket-for-bucket, and every
// applied CSTORE is accounted once across the switch's cstore_commits
// counter, metric and StageCStore span — the reconciliation the
// scenario tests assert exactly, across switch crash-restarts.
package inband
