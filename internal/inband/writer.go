package inband

import (
	"repro/internal/core"
	"repro/internal/endhost"
	"repro/internal/mem"
	"repro/internal/netsim"
	"repro/internal/obs"
)

// Writer backoff after an inconclusive echo or a failed send, doubling
// to a cap — the same shape accounting uses for its CSTORE retries.
const (
	writerBackoffBase = 2 * netsim.Millisecond
	writerBackoffCap  = 64 * netsim.Millisecond
)

// WriterConfig wires a HistWriter to its switch window.
type WriterConfig struct {
	Prober *endhost.Prober
	DstMAC core.MAC
	// DstIP is a host beyond the histogram's switch, so increment
	// probes transit it and echo back.
	DstIP uint32
	Spec  HistSpec
	// Probe bounds each increment attempt; a nonzero Timeout with
	// retries is what makes the duplicate-detection path reachable.
	Probe endhost.ProbeConfig
	// Metrics (optional) registers inband/<Name>/* counters.
	Metrics *obs.Registry
	// Name defaults to "writer".
	Name string
}

// HistWriter folds locally measured samples into a switch-resident
// power-of-two histogram, one CSTORE TPP per increment.  It is the
// window's single writer, which turns compare-and-store into an
// exactly-once increment protocol:
//
//   - want[i] is ground truth: how many samples belong in bucket i.
//   - shadow[i] mirrors what the writer has confirmed is in SRAM.
//   - One attempt is outstanding at a time: CEXEC-gated to the home
//     switch, CSTORE(bucket, cond=shadow[i], src=shadow[i]+1), then a
//     LOAD of [Switch:Epoch] in the same execution.  The echoed old
//     value says exactly what happened: cond means this attempt
//     applied; cond+1 means a retransmitted twin already applied (the
//     duplicate is detected, not double-counted); anything else is
//     adopted as the true SRAM state.
//   - An epoch change in the echo means the switch crash-restarted and
//     wiped the window: every shadow re-bases to zero, which re-offers
//     every confirmed sample, so SRAM in the new epoch converges back
//     to the full sample multiset.
//
// The writer drives SRAM toward want; Drained reports convergence.
type HistWriter struct {
	cfg    WriterConfig
	want   []uint32
	shadow []uint32
	epoch  uint32

	inFlight bool
	backoff  netsim.Time

	// Samples counts Observe calls; Applied counts attempts whose echo
	// proved this transmission committed; Duplicates counts echoes
	// proving an earlier twin of the attempt committed; Adopted counts
	// echoes showing an unexpected SRAM value (foreign writer or
	// sentinel alias — zero in a correctly partitioned deployment);
	// Inconclusive counts echoes where the program never executed at
	// the gated switch; Rebases counts epoch changes observed; Failures
	// counts attempts whose send or every retransmission was lost.
	Samples      uint64
	Applied      uint64
	Duplicates   uint64
	Adopted      uint64
	Inconclusive uint64
	Rebases      uint64
	Failures     uint64

	mSamples, mApplied, mDuplicates, mInconclusive, mRebases *obs.Counter
}

// NewHistWriter builds the writer; the window starts (and the switch
// boots) all-zero, so want, shadow and epoch start all-zero too.
func NewHistWriter(cfg WriterConfig) *HistWriter {
	if cfg.Name == "" {
		cfg.Name = "writer"
	}
	w := &HistWriter{
		cfg:    cfg,
		want:   make([]uint32, cfg.Spec.Buckets),
		shadow: make([]uint32, cfg.Spec.Buckets),
	}
	if cfg.Metrics != nil {
		pre := "inband/" + cfg.Name + "/"
		w.mSamples = cfg.Metrics.Counter(pre + "samples")
		w.mApplied = cfg.Metrics.Counter(pre + "applied")
		w.mDuplicates = cfg.Metrics.Counter(pre + "duplicates")
		w.mInconclusive = cfg.Metrics.Counter(pre + "inconclusive")
		w.mRebases = cfg.Metrics.Counter(pre + "rebases")
	}
	return w
}

// Observe buckets one sample (obs.BucketOf, clipped to the window) and
// starts the pump if it is idle.
func (w *HistWriter) Observe(v uint64) {
	b := obs.BucketOf(v)
	if b >= len(w.want) {
		b = len(w.want) - 1
	}
	if b < 0 {
		return
	}
	w.want[b]++
	w.Samples++
	w.mSamples.Inc()
	w.pump()
}

// Drained reports whether every observed sample has been confirmed in
// SRAM in the switch's current epoch (as far as the writer knows).
func (w *HistWriter) Drained() bool {
	return !w.inFlight && w.next() < 0
}

// PendingSamples returns how many increments are still unconfirmed.
func (w *HistWriter) PendingSamples() uint64 {
	var n uint64
	for i := range w.want {
		n += uint64(w.want[i] - w.shadow[i])
	}
	return n
}

// next returns the lowest bucket with unconfirmed samples, or -1.
// Lowest-first is arbitrary but deterministic.
func (w *HistWriter) next() int {
	for i := range w.want {
		if w.want[i] > w.shadow[i] {
			return i
		}
	}
	return -1
}

// pump sends the next increment attempt unless one is outstanding.
func (w *HistWriter) pump() {
	if w.inFlight {
		return
	}
	i := w.next()
	if i < 0 {
		return
	}
	w.inFlight = true
	cond := w.shadow[i]
	// CEXEC gate, CSTORE(bucket, cond, cond+1) echoing the old value
	// into word 4, and the boot epoch read atomically in the same
	// execution into word 5 — so the echoed value and the epoch that
	// interprets it can never straddle a crash.
	tpp := core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpCEXEC, A: uint16(mem.SwitchBase + mem.SwitchID), B: 0},
		{Op: core.OpCSTORE, A: uint16(w.cfg.Spec.BucketAddr(i)), B: 2},
		{Op: core.OpLOAD, A: uint16(mem.SwitchBase + mem.SwitchEpoch), B: 5},
	}, 6)
	tpp.SetWord(0, 0xFFFFFFFF)
	tpp.SetWord(1, w.cfg.Spec.SwitchID)
	tpp.SetWord(2, cond)
	tpp.SetWord(3, cond+1)
	tpp.SetWord(4, endhost.Unexecuted)
	tpp.SetWord(5, endhost.Unexecuted)
	_, ok := w.cfg.Prober.ProbeCfg(w.cfg.DstMAC, w.cfg.DstIP, tpp, w.cfg.Probe,
		func(e *core.TPP) { w.onEcho(i, cond, e) },
		func() { w.onAttemptLost() })
	if !ok {
		w.onAttemptLost()
	}
}

// onAttemptLost handles a send failure or an exhausted probe deadline:
// back off and re-offer (the retry reuses the same cond, so a twin that
// did apply is detected as a duplicate, never double-counted).
func (w *HistWriter) onAttemptLost() {
	w.inFlight = false
	w.Failures++
	w.cfg.Prober.After(w.nextBackoff(), w.pump)
}

func (w *HistWriter) onEcho(i int, cond uint32, e *core.TPP) {
	w.inFlight = false
	got := e.Word(4)
	epoch := e.Word(5)
	if got == endhost.Unexecuted && epoch == endhost.Unexecuted {
		// Echoed without executing at the home switch (throttled or
		// stripped): inconclusive, back off and retry the same cond.
		w.Inconclusive++
		w.mInconclusive.Inc()
		w.cfg.Prober.After(w.nextBackoff(), w.pump)
		return
	}
	w.backoff = 0
	rebased := epoch != w.epoch
	if rebased {
		// The switch crash-restarted since the last conclusive echo:
		// the window was wiped, so nothing previously confirmed is in
		// SRAM any more.  Re-base every shadow to the wiped state —
		// which re-offers every confirmed sample for replay into the
		// new epoch — then fall through to mirror what this echo
		// proved about bucket i after the wipe.
		w.Rebases++
		w.mRebases.Inc()
		w.epoch = epoch
		clear(w.shadow)
	}
	switch got {
	case cond:
		// The compare matched: this transmission's CSTORE committed
		// and the bucket now holds cond+1.
		w.Applied++
		w.mApplied.Inc()
		w.shadow[i] = got + 1
	case cond + 1:
		// An earlier transmission of this same attempt committed and
		// its echo was lost; this copy's compare failed against the
		// already-incremented value.  The sample is in — count it once.
		w.Duplicates++
		w.mDuplicates.Inc()
		w.shadow[i] = got
	default:
		// Mirror SRAM's word and re-drive from there.  Across a wipe
		// this is the normal shape — cond was confirmed in the dead
		// epoch, so a mismatch (typically got == 0) carries no signal.
		// Within an epoch it is a value the single-writer protocol
		// cannot produce: count it as a foreign write.
		if !rebased {
			w.Adopted++
		}
		w.shadow[i] = got
	}
	w.pump()
}

func (w *HistWriter) nextBackoff() netsim.Time {
	if w.backoff == 0 {
		w.backoff = writerBackoffBase
	} else if w.backoff < writerBackoffCap {
		w.backoff *= 2
		if w.backoff > writerBackoffCap {
			w.backoff = writerBackoffCap
		}
	}
	return w.backoff
}
