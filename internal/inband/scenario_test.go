package inband

import (
	"reflect"
	"testing"
)

// TestHistScenario is the tentpole reconciliation: the dataplane-
// collected RTT histogram matches host-side ground truth bucket for
// bucket, every CSTORE is accounted exactly once across switch
// counter, metric and span — including across a crash-restart that
// wipes the window — and the whole run is deterministic per seed.
func TestHistScenario(t *testing.T) {
	for _, seed := range []int64{1, 42} {
		a := RunHist(DefaultHist(seed))
		b := RunHist(DefaultHist(seed))
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: two runs diverged:\n%+v\nvs\n%+v", seed, a, b)
		}

		if a.Samples == 0 || a.TruthTotal != a.Samples {
			t.Fatalf("seed %d: %d samples but truth holds %d", seed, a.Samples, a.TruthTotal)
		}
		if !a.Drained || a.Pending != 0 {
			t.Fatalf("seed %d: writer not drained (pending %d)", seed, a.Pending)
		}

		// The crash happened and was noticed end to end.
		if a.Reboots != 1 {
			t.Fatalf("seed %d: %d reboots", seed, a.Reboots)
		}
		if a.Rebases == 0 {
			t.Fatalf("seed %d: writer never re-based across the wipe", seed)
		}
		if a.Discontinuities == 0 {
			t.Fatalf("seed %d: collector never flagged the wipe", seed)
		}

		// Bucket-for-bucket: truth == final SRAM == collector's
		// current-epoch view.
		if a.Truth != a.FinalSRAM {
			t.Fatalf("seed %d: truth != SRAM\ntruth %v\nsram  %v", seed, a.Truth, a.FinalSRAM)
		}
		if a.Truth != a.Current {
			t.Fatalf("seed %d: truth != collected\ntruth %v\ncoll  %v", seed, a.Truth, a.Current)
		}
		if nonZeroBuckets(a.Truth[:]) < 2 {
			t.Fatalf("seed %d: RTT spread too narrow to be interesting: %v", seed, a.Truth)
		}

		// CSTORE reconciliation, exact across the wipe: every commit is
		// either still in SRAM (CurrentTotal) or was destroyed by the
		// wipe (CapturedTotal); counter == metric == spans.
		if a.CurrentTotal+a.CapturedTotal != a.SwitchCommits {
			t.Fatalf("seed %d: current %d + wiped %d != commits %d",
				seed, a.CurrentTotal, a.CapturedTotal, a.SwitchCommits)
		}
		if int64(a.SwitchCommits) != a.CommitMetric || int(a.SwitchCommits) != a.CommitSpans {
			t.Fatalf("seed %d: commits %d, metric %d, spans %d",
				seed, a.SwitchCommits, a.CommitMetric, a.CommitSpans)
		}
		if a.CapturedTotal == 0 {
			t.Fatalf("seed %d: the wipe destroyed nothing — crash landed before any commit", seed)
		}

		// Sweep reconciliation: count == metric == spans; the folded
		// metric equals the cumulative accumulation; cumulative is
		// bounded by what was ever committed and never below current.
		if a.Sweeps == 0 || int64(a.Sweeps) != a.SweepsMetric || int(a.Sweeps) != a.SweepSpans {
			t.Fatalf("seed %d: sweeps %d, metric %d, spans %d",
				seed, a.Sweeps, a.SweepsMetric, a.SweepSpans)
		}
		if int64(a.CumulativeTotal) != a.FoldedMetric {
			t.Fatalf("seed %d: cumulative %d != folded metric %d",
				seed, a.CumulativeTotal, a.FoldedMetric)
		}
		var sumFolded uint64
		for _, f := range a.SweepFolded {
			sumFolded += f
		}
		if sumFolded != a.CumulativeTotal {
			t.Fatalf("seed %d: sweep series sums to %d, cumulative %d",
				seed, sumFolded, a.CumulativeTotal)
		}
		for i := range a.Cumulative {
			if a.Cumulative[i] < a.Current[i] {
				t.Fatalf("seed %d: bucket %d cumulative %d < current %d (negative delta)",
					seed, i, a.Cumulative[i], a.Current[i])
			}
		}
		if a.CumulativeTotal > a.CurrentTotal+a.CapturedTotal {
			t.Fatalf("seed %d: cumulative %d exceeds everything committed %d",
				seed, a.CumulativeTotal, a.CurrentTotal+a.CapturedTotal)
		}

		// Writer-side accounting: applied mirrors its metric; the loss
		// window forced retransmissions, whose duplicates were detected
		// rather than double-counted (the bucket match above proves it).
		if int64(a.Applied) != a.AppliedMetric {
			t.Fatalf("seed %d: applied %d != metric %d", seed, a.Applied, a.AppliedMetric)
		}
		if a.Retransmits == 0 {
			t.Fatalf("seed %d: loss window caused no retransmissions", seed)
		}
		if a.Adopted != 0 {
			t.Fatalf("seed %d: %d foreign SRAM values adopted in a single-writer window",
				seed, a.Adopted)
		}

		// Environment: verified tenant programs are never denied or
		// rejected, and nothing wrapped in the tracer.
		if a.Denied != 0 || a.NICRejected != 0 {
			t.Fatalf("seed %d: denied %d, NIC-rejected %d", seed, a.Denied, a.NICRejected)
		}
		if a.SpansDropped != 0 {
			t.Fatalf("seed %d: tracer dropped %d spans", seed, a.SpansDropped)
		}
	}
}

// TestHistScenarioNoFaults pins the clean-path identity: without a
// crash, commits == samples == everything, and nothing re-bases.
func TestHistScenarioNoFaults(t *testing.T) {
	cfg := DefaultHist(7)
	cfg.RebootAt = 0
	cfg.LossFrom, cfg.LossTo = 0, 0
	a := RunHist(cfg)
	if !a.Drained {
		t.Fatalf("writer not drained (pending %d)", a.Pending)
	}
	if a.Truth != a.Current || a.Truth != a.FinalSRAM {
		t.Fatalf("truth/current/SRAM diverge:\n%v\n%v\n%v", a.Truth, a.Current, a.FinalSRAM)
	}
	if a.SwitchCommits != a.Samples {
		t.Fatalf("%d commits for %d samples on the clean path", a.SwitchCommits, a.Samples)
	}
	if a.Rebases != 0 || a.Discontinuities != 0 || a.Duplicates != 0 {
		t.Fatalf("clean path saw rebases %d, discontinuities %d, duplicates %d",
			a.Rebases, a.Discontinuities, a.Duplicates)
	}
	if a.CumulativeTotal != a.CurrentTotal {
		t.Fatalf("cumulative %d != current %d without a wipe", a.CumulativeTotal, a.CurrentTotal)
	}
}

// TestSpinScenario: the passive observer's histogram equals the
// client's own flip-interval measurements exactly, reconciled across
// SRAM, collector sweeps, switch counters, metrics and spans.
func TestSpinScenario(t *testing.T) {
	for _, seed := range []int64{1, 42} {
		a := RunSpin(DefaultSpin(seed))
		b := RunSpin(DefaultSpin(seed))
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: two runs diverged:\n%+v\nvs\n%+v", seed, a, b)
		}

		if a.Flips == 0 || a.TruthTotal != a.Flips {
			t.Fatalf("seed %d: %d flips but truth holds %d", seed, a.Flips, a.TruthTotal)
		}
		if a.Truth != a.SRAM {
			t.Fatalf("seed %d: observer diverged from client truth\ntruth %v\nsram  %v",
				seed, a.Truth, a.SRAM)
		}
		if a.Truth != a.Current || a.Truth != a.Cumulative {
			t.Fatalf("seed %d: collector diverged from truth\ntruth %v\ncur %v\ncum %v",
				seed, a.Truth, a.Current, a.Cumulative)
		}
		if nonZeroBuckets(a.Truth[:]) < 2 {
			t.Fatalf("seed %d: interval spread too narrow: %v", seed, a.Truth)
		}

		if a.Edges != a.Flips || a.Samples != a.Flips {
			t.Fatalf("seed %d: flips %d, edges %d, samples %d", seed, a.Flips, a.Edges, a.Samples)
		}
		if int64(a.Edges) != a.EdgesMetric || int(a.Edges) != a.EdgeSpans {
			t.Fatalf("seed %d: edges %d, metric %d, spans %d",
				seed, a.Edges, a.EdgesMetric, a.EdgeSpans)
		}
		if int64(a.Samples) != a.SamplesMetric {
			t.Fatalf("seed %d: samples %d != metric %d", seed, a.Samples, a.SamplesMetric)
		}
		if a.Sweeps == 0 || int(a.Sweeps) != a.SweepSpans {
			t.Fatalf("seed %d: sweeps %d, spans %d", seed, a.Sweeps, a.SweepSpans)
		}
		if a.Discontinuities != 0 {
			t.Fatalf("seed %d: %d discontinuities without a crash", seed, a.Discontinuities)
		}
		if a.SpansDropped != 0 {
			t.Fatalf("seed %d: tracer dropped %d spans", seed, a.SpansDropped)
		}
	}
}

func nonZeroBuckets(b []uint64) int {
	n := 0
	for _, v := range b {
		if v != 0 {
			n++
		}
	}
	return n
}
