package inband

import "repro/internal/mem"

// HistSpec names one dataplane histogram: a window of Buckets
// consecutive SRAM words on one switch, where word i counts samples in
// obs power-of-two bucket i (obs.BucketLow(i)..obs.BucketHigh(i)).
// Base is the address TPPs use — tenant-relative when the sending NIC
// stamps a tenant id, since the guard relocates SRAM accesses into the
// tenant's partition; physical otherwise.
type HistSpec struct {
	SwitchID uint32
	Base     mem.Addr
	Buckets  int
}

// BucketAddr returns the SRAM address of bucket i's counter word.
func (s HistSpec) BucketAddr(i int) mem.Addr { return s.Base + mem.Addr(i) }
