package netsim

import (
	"fmt"
	"math/rand"
)

// LossModel decides, frame by frame, whether a transmission is
// corrupted in flight.  Models own their random source so loss
// patterns replay exactly for a given seed regardless of what else the
// simulation draws from the shared rng.
type LossModel interface {
	// Lost reports whether the next frame is corrupted.  Called once
	// per frame, in transmission order.
	Lost() bool
}

// Bernoulli drops each frame independently with probability P — the
// memoryless corruption model.
type Bernoulli struct {
	p   float64
	rnd *rand.Rand
}

// NewBernoulli builds the independent-loss model.  p must lie in the
// closed interval [0, 1]: p == 1 is the total-blackout case fault
// injection uses.
func NewBernoulli(p float64, seed int64) *Bernoulli {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("netsim: loss probability %v out of [0,1]", p))
	}
	return &Bernoulli{p: p, rnd: rand.New(rand.NewSource(seed))}
}

// Lost implements LossModel.
func (b *Bernoulli) Lost() bool {
	if b.p <= 0 {
		return false
	}
	if b.p >= 1 {
		return true
	}
	return b.rnd.Float64() < b.p
}

// GilbertElliott is the classic two-state bursty loss model: the
// channel flips between a Good and a Bad state with per-frame
// transition probabilities, and each state drops frames with its own
// probability.  Long stays in the Bad state produce the loss bursts
// that Bernoulli loss cannot, which is what makes probe retry (rather
// than per-interval resampling) necessary at the end host.
type GilbertElliott struct {
	pGoodBad float64 // P(good -> bad) per frame
	pBadGood float64 // P(bad -> good) per frame
	lossGood float64 // drop probability while good
	lossBad  float64 // drop probability while bad
	bad      bool
	rnd      *rand.Rand
}

// NewGilbertElliott builds the bursty model.  All four probabilities
// must lie in [0, 1]; the channel starts in the Good state.
func NewGilbertElliott(pGoodBad, pBadGood, lossGood, lossBad float64, seed int64) *GilbertElliott {
	for _, p := range []float64{pGoodBad, pBadGood, lossGood, lossBad} {
		if p < 0 || p > 1 {
			panic(fmt.Sprintf("netsim: Gilbert-Elliott probability %v out of [0,1]", p))
		}
	}
	return &GilbertElliott{
		pGoodBad: pGoodBad, pBadGood: pBadGood,
		lossGood: lossGood, lossBad: lossBad,
		rnd: rand.New(rand.NewSource(seed)),
	}
}

// Bad reports whether the channel is currently in the Bad state.
func (g *GilbertElliott) Bad() bool { return g.bad }

// Lost implements LossModel: advance the state machine one frame, then
// sample the current state's drop probability.
func (g *GilbertElliott) Lost() bool {
	if g.bad {
		if g.rnd.Float64() < g.pBadGood {
			g.bad = false
		}
	} else {
		if g.rnd.Float64() < g.pGoodBad {
			g.bad = true
		}
	}
	p := g.lossGood
	if g.bad {
		p = g.lossBad
	}
	switch {
	case p <= 0:
		return false
	case p >= 1:
		return true
	}
	return g.rnd.Float64() < p
}
