package netsim

import (
	"math"
	"testing"
)

func TestChannelLossRate(t *testing.T) {
	s := New(1)
	k := &sink{sim: s}
	ch := NewChannel(s, 1_000_000_000, 0, k, 0)
	ch.SetLoss(0.25, 99)

	const frames = 4000
	sent := 0
	var pump func()
	pump = func() {
		if sent >= frames {
			return
		}
		sent++
		ch.Send(mkPacket(100))
	}
	ch.SetOnIdle(pump)
	s.At(0, pump)
	s.Run()

	got := float64(len(k.pkts)) / frames
	if math.Abs(got-0.75) > 0.03 {
		t.Fatalf("delivery rate = %.3f, want ~0.75", got)
	}
	if ch.PacketsLost+uint64(len(k.pkts)) != frames {
		t.Fatalf("loss accounting: lost=%d delivered=%d", ch.PacketsLost, len(k.pkts))
	}
}

func TestChannelLossZeroByDefault(t *testing.T) {
	s := New(1)
	k := &sink{sim: s}
	ch := NewChannel(s, 1_000_000_000, 0, k, 0)
	for i := 0; i < 100; i++ {
		at := Time(i) * Millisecond
		s.At(at, func() { ch.Send(mkPacket(10)) })
	}
	s.Run()
	if len(k.pkts) != 100 {
		t.Fatalf("lossless channel dropped: %d/100", len(k.pkts))
	}
}

func TestChannelLossValidation(t *testing.T) {
	s := New(1)
	ch := NewChannel(s, 1000, 0, &sink{sim: s}, 0)
	// The closed interval [0, 1] is accepted: p == 1 is the blackout
	// case fault injection uses.
	ch.SetLoss(0, 1)
	ch.SetLoss(1, 1)
	for _, p := range []float64{-0.1, 1.01, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetLoss(%v) did not panic", p)
				}
			}()
			ch.SetLoss(p, 1)
		}()
	}
}

func TestChannelLossDeterminism(t *testing.T) {
	run := func() uint64 {
		s := New(1)
		k := &sink{sim: s}
		ch := NewChannel(s, 1_000_000_000, 0, k, 0)
		ch.SetLoss(0.5, 7)
		for i := 0; i < 200; i++ {
			at := Time(i) * Millisecond
			s.At(at, func() { ch.Send(mkPacket(10)) })
		}
		s.Run()
		return ch.PacketsLost
	}
	if run() != run() {
		t.Fatal("loss pattern not deterministic")
	}
}
