// Package netsim is a deterministic discrete-event network simulator:
// the substrate standing in for the paper's Linux-router testbed and
// ns-2 setup (see DESIGN.md §2).  It provides a virtual clock, a stable
// event queue, timers and byte-accurate links; switches and hosts are
// built on top in internal/asic and internal/endhost.
package netsim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Time is simulated time in nanoseconds since the start of the run.
type Time int64

// Convenient units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts a float second count into simulated time.
func Seconds(s float64) Time { return Time(s * float64(Second)) }

// Milliseconds converts a float millisecond count into simulated time.
func Milliseconds(ms float64) Time { return Time(ms * float64(Millisecond)) }

// Seconds returns the time as float seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time in seconds with microsecond precision.
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Sim is a discrete-event scheduler.  Events at equal times fire in
// scheduling order (FIFO), which makes runs fully deterministic for a
// given seed.  Sim is not safe for concurrent use: the dataplane model
// is single-threaded, like one ASIC pipeline.
type Sim struct {
	now     Time
	events  eventHeap
	seq     uint64
	rng     *rand.Rand
	stopped bool
}

// New creates a simulator whose random source is seeded with seed, so
// experiments are reproducible.
func New(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (s *Sim) Now() Time { return s.now }

// Rand exposes the simulation's deterministic random source.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Pending returns the number of queued events.
func (s *Sim) Pending() int { return len(s.events) }

// At schedules fn to run at absolute time t.  Scheduling in the past
// panics: it is always a modeling bug.
func (s *Sim) At(t Time, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("netsim: scheduling at %v before now %v", t, s.now))
	}
	s.seq++
	heap.Push(&s.events, event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d from now.
func (s *Sim) After(d Time, fn func()) { s.At(s.now+d, fn) }

// Stop makes Run and RunUntil return after the current event.
func (s *Sim) Stop() { s.stopped = true }

// Run processes events until the queue drains or Stop is called.
func (s *Sim) Run() {
	s.stopped = false
	for len(s.events) > 0 && !s.stopped {
		s.step()
	}
}

// RunUntil processes every event scheduled at or before t, then
// advances the clock to exactly t.
func (s *Sim) RunUntil(t Time) {
	s.stopped = false
	for len(s.events) > 0 && !s.stopped && s.events[0].at <= t {
		s.step()
	}
	if !s.stopped && t > s.now {
		s.now = t
	}
}

func (s *Sim) step() {
	e := heap.Pop(&s.events).(event)
	s.now = e.at
	e.fn()
}

// Ticker fires a callback periodically until stopped.
type Ticker struct {
	sim     *Sim
	period  Time
	fn      func()
	stopped bool
}

// Every schedules fn to run first at start and then every period.  It
// returns a Ticker whose Stop cancels future firings.
func (s *Sim) Every(start, period Time, fn func()) *Ticker {
	if period <= 0 {
		panic("netsim: ticker period must be positive")
	}
	t := &Ticker{sim: s, period: period, fn: fn}
	s.At(start, t.tick)
	return t
}

func (t *Ticker) tick() {
	if t.stopped {
		return
	}
	t.fn()
	if !t.stopped {
		t.sim.After(t.period, t.tick)
	}
}

// Stop cancels the ticker.  Safe to call multiple times, including from
// inside the callback.
func (t *Ticker) Stop() { t.stopped = true }
