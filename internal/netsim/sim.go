// Package netsim is a deterministic discrete-event network simulator:
// the substrate standing in for the paper's Linux-router testbed and
// ns-2 setup (see DESIGN.md §2).  It provides a virtual clock, a stable
// event queue, timers and byte-accurate links; switches and hosts are
// built on top in internal/asic and internal/endhost.
package netsim

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
)

// Time is simulated time in nanoseconds since the start of the run.
type Time int64

// Convenient units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts a float second count into simulated time.
func Seconds(s float64) Time { return Time(s * float64(Second)) }

// Milliseconds converts a float millisecond count into simulated time.
func Milliseconds(ms float64) Time { return Time(ms * float64(Millisecond)) }

// Seconds returns the time as float seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time in seconds with microsecond precision.
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// PacketDelivery is the allocation-free alternative to scheduling a
// closure for per-packet events: the receiver is stored directly in
// the event along with the packet and one word of caller-packed
// context, so the scheduler's hot path (one event per serialized
// frame, one per pipeline stage) captures nothing.
type PacketDelivery interface {
	// DeliverAt is invoked at the event's time with the packet and the
	// arg value passed to AtPacket.
	DeliverAt(pkt *core.Packet, arg uint64)
}

// eventKey is the heap's sort record: firing time, FIFO tiebreak, and
// the index of the event's payload in the slot slab.  Keys are
// pointer-free on purpose — sifting swaps only keys, so heap
// maintenance never triggers GC write barriers (which dominated the
// hot-path profile when the heap held the payload pointers directly).
type eventKey struct {
	at   Time
	seq  uint64
	slot int32
}

// eventPayload is either a closure event (fn != nil) or a packet event
// (pd != nil); exactly one of the two is set.  Payloads live in a
// stable slab and never move while queued; each slot is written once at
// push and cleared once at pop.
type eventPayload struct {
	fn  func()
	pd  PacketDelivery
	pkt *core.Packet
	arg uint64
}

// Sim is a discrete-event scheduler.  Events at equal times fire in
// scheduling order (FIFO), which makes runs fully deterministic for a
// given seed.  Sim is not safe for concurrent use: the dataplane model
// is single-threaded, like one ASIC pipeline.
//
// The event queue is a hand-rolled binary min-heap of pointer-free
// keys over a slot slab (see eventKey); container/heap would box every
// pushed event into an interface, allocating once per scheduled event —
// the single largest allocation source on the packet hot path.
type Sim struct {
	now     Time
	keys    []eventKey
	slots   []eventPayload
	free    []int32 // recycled slot indices
	seq     uint64
	rng     *rand.Rand
	stopped bool
}

func (s *Sim) keyLess(i, j int) bool {
	if s.keys[i].at != s.keys[j].at {
		return s.keys[i].at < s.keys[j].at
	}
	return s.keys[i].seq < s.keys[j].seq
}

// New creates a simulator whose random source is seeded with seed, so
// experiments are reproducible.
func New(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (s *Sim) Now() Time { return s.now }

// Rand exposes the simulation's deterministic random source.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Pending returns the number of queued events.
func (s *Sim) Pending() int { return len(s.keys) }

// At schedules fn to run at absolute time t.  Scheduling in the past
// panics: it is always a modeling bug.
//
//alloc:free
func (s *Sim) At(t Time, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("netsim: scheduling at %v before now %v", t, s.now))
	}
	slot := s.alloc()
	s.slots[slot].fn = fn
	s.push(t, slot)
}

// AtPacket schedules pd.DeliverAt(pkt, arg) at absolute time t without
// allocating: channels and switches use it for frame arrivals and
// pipeline stages instead of capturing the packet in a closure.
//
//alloc:free
func (s *Sim) AtPacket(t Time, pd PacketDelivery, pkt *core.Packet, arg uint64) {
	if t < s.now {
		panic(fmt.Sprintf("netsim: scheduling at %v before now %v", t, s.now))
	}
	slot := s.alloc()
	s.slots[slot] = eventPayload{pd: pd, pkt: pkt, arg: arg}
	s.push(t, slot)
}

// After schedules fn to run d from now.
func (s *Sim) After(d Time, fn func()) { s.At(s.now+d, fn) }

// alloc returns a free payload slot, growing the slab if none are
// recycled.
//
//alloc:free
func (s *Sim) alloc() int32 {
	if n := len(s.free); n > 0 {
		slot := s.free[n-1]
		s.free = s.free[:n-1]
		return slot
	}
	s.slots = append(s.slots, eventPayload{})
	return int32(len(s.slots) - 1)
}

//alloc:free
func (s *Sim) push(t Time, slot int32) {
	s.seq++
	h := append(s.keys, eventKey{at: t, seq: s.seq, slot: slot})
	s.keys = h
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.keyLess(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// pop removes the earliest event, returning its time and payload.  The
// payload's slot is cleared (releasing the packet/closure references)
// and recycled before the caller runs the event, so re-entrant
// scheduling from inside the event sees a consistent queue.
//
//alloc:free
func (s *Sim) pop() (Time, eventPayload) {
	h := s.keys
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	s.keys = h[:n]
	// Sift down (pointer-free swaps: no write barriers).
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && s.keyLess(r, l) {
			m = r
		}
		if !s.keyLess(m, i) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	e := s.slots[top.slot]
	s.slots[top.slot] = eventPayload{}
	s.free = append(s.free, top.slot)
	return top.at, e
}

// Stop makes Run and RunUntil return after the current event.
func (s *Sim) Stop() { s.stopped = true }

// Run processes events until the queue drains or Stop is called.
func (s *Sim) Run() {
	s.stopped = false
	for len(s.keys) > 0 && !s.stopped {
		s.step()
	}
}

// RunUntil processes every event scheduled at or before t, then
// advances the clock to exactly t.
func (s *Sim) RunUntil(t Time) {
	s.stopped = false
	for len(s.keys) > 0 && !s.stopped && s.keys[0].at <= t {
		s.step()
	}
	if !s.stopped && t > s.now {
		s.now = t
	}
}

//alloc:free
func (s *Sim) step() {
	at, e := s.pop()
	s.now = at
	if e.fn != nil {
		e.fn()
		return
	}
	e.pd.DeliverAt(e.pkt, e.arg)
}

// Ticker fires a callback periodically until stopped.
type Ticker struct {
	sim     *Sim
	period  Time
	fn      func()
	tickFn  func() // t.tick bound once, so rescheduling never allocates
	stopped bool
}

// Every schedules fn to run first at start and then every period.  It
// returns a Ticker whose Stop cancels future firings.
func (s *Sim) Every(start, period Time, fn func()) *Ticker {
	if period <= 0 {
		panic("netsim: ticker period must be positive")
	}
	t := &Ticker{sim: s, period: period, fn: fn}
	t.tickFn = t.tick
	s.At(start, t.tickFn)
	return t
}

func (t *Ticker) tick() {
	if t.stopped {
		return
	}
	t.fn()
	if !t.stopped {
		t.sim.After(t.period, t.tickFn)
	}
}

// Stop cancels the ticker.  Safe to call multiple times, including from
// inside the callback.
func (t *Ticker) Stop() { t.stopped = true }
