package netsim

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/obs"
)

// Receiver is anything that can accept a packet from a link: a switch
// ingress pipeline or a host NIC.
type Receiver interface {
	// Receive is called when the last bit of the packet arrives on
	// the receiver's port.
	Receive(pkt *core.Packet, port int)
}

// Channel is one direction of a link: a serializing transmitter with a
// fixed bit rate and propagation delay.  The owning node (switch port
// or host NIC) is responsible for queueing; a Channel transmits one
// packet at a time and reports idleness through the OnIdle callback, a
// cut at the same place as a real MAC's transmit-complete interrupt.
type Channel struct {
	sim   *Sim
	rate  int64 // bits per second
	delay Time

	dst     Receiver
	dstPort int

	busyUntil Time
	onIdle    func()
	idleFn    func() // c.notifyIdle bound once; scheduled per send

	loss LossModel

	// down is set while the link is administratively or physically
	// down (fault injection).  The transmitter keeps clocking frames
	// out — the owner's queue must not stall — but nothing arrives.
	// downEpoch increments on every transition to down so frames in
	// flight at that moment are dropped too.
	down      bool
	downEpoch uint64

	// Packet-lifecycle tracing (nil when telemetry is disabled).
	trace   *obs.Tracer
	traceID uint32

	// Counters read by the port statistics machinery.
	BytesSent   uint64
	PacketsSent uint64
	// PacketsLost counts frames corrupted in flight by the loss model.
	PacketsLost uint64
	// PacketsDownDrops counts frames dropped because the link was (or
	// went) down while they were on the wire.
	PacketsDownDrops uint64
}

// NewChannel builds a channel delivering to dst's port dstPort at rate
// bits/second with the given propagation delay.  Channels start up.
func NewChannel(sim *Sim, rate int64, delay Time, dst Receiver, dstPort int) *Channel {
	if rate <= 0 {
		panic(fmt.Sprintf("netsim: channel rate %d must be positive", rate))
	}
	if delay < 0 {
		panic("netsim: negative propagation delay")
	}
	c := &Channel{sim: sim, rate: rate, delay: delay, dst: dst, dstPort: dstPort}
	c.idleFn = c.notifyIdle
	return c
}

func (c *Channel) notifyIdle() {
	if c.onIdle != nil {
		c.onIdle()
	}
}

// Rate returns the channel capacity in bits per second.
func (c *Channel) Rate() int64 { return c.rate }

// RateBytes returns the channel capacity in bytes per second, the unit
// the TPP memory map exposes ([Link:Capacity]).  The register is 32
// bits wide, so capacities beyond ~34.4 Gb/s saturate at MaxUint32
// instead of wrapping around.
func (c *Channel) RateBytes() uint32 {
	bytesPerSec := c.rate / 8
	if bytesPerSec > math.MaxUint32 {
		return math.MaxUint32
	}
	return uint32(bytesPerSec)
}

// Delay returns the propagation delay.
func (c *Channel) Delay() Time { return c.delay }

// SetOnIdle registers the callback invoked each time a transmission
// completes; the owner uses it to dequeue the next packet.
func (c *Channel) SetOnIdle(fn func()) { c.onIdle = fn }

// SetLoss makes the channel drop each frame independently with
// probability p, using its own deterministic random source — the
// failure-injection knob for robustness tests ("TPPs are therefore
// subject to congestion", and on real links to corruption too).
// p covers the closed interval [0, 1]: p == 1 is a total blackout.
func (c *Channel) SetLoss(p float64, seed int64) {
	c.loss = NewBernoulli(p, seed)
}

// SetLossModel installs an arbitrary loss model (nil restores lossless
// operation); see Bernoulli and GilbertElliott.
func (c *Channel) SetLossModel(m LossModel) { c.loss = m }

// Up reports whether the link is up.
func (c *Channel) Up() bool { return !c.down }

// SetUp raises or severs the link.  Taking the link down drops every
// frame currently in flight and every frame transmitted while down;
// the transmitter keeps serializing (so the owner's queue drains and
// recovery needs no special kick), but nothing reaches the far end.
func (c *Channel) SetUp(up bool) {
	if up == !c.down {
		return
	}
	c.down = !up
	if c.down {
		c.downEpoch++
	}
}

// SetTrace attaches the packet-lifecycle tracer; id identifies this
// channel in link span events (serialization start, loss, delivery).
// A nil tracer disables link tracing at zero per-packet cost.
func (c *Channel) SetTrace(tr *obs.Tracer, id uint32) {
	c.trace = tr
	c.traceID = id
}

// TraceID returns the identifier link span events carry (0 when
// tracing was never attached).
func (c *Channel) TraceID() uint32 { return c.traceID }

// Busy reports whether a transmission is in progress.
func (c *Channel) Busy() bool { return c.sim.Now() < c.busyUntil }

// SerializationDelay returns how long a frame of n bytes occupies the
// transmitter.
func (c *Channel) SerializationDelay(n int) Time {
	return Time(int64(n) * 8 * int64(Second) / c.rate)
}

// Send begins transmitting pkt.  It must only be called when the
// channel is idle (drive it from OnIdle); calling it while busy panics
// because it means the owner's queueing is broken.  It returns the time
// the last bit leaves the transmitter.
//
//alloc:free
func (c *Channel) Send(pkt *core.Packet) Time {
	if c.Busy() {
		panic("netsim: Send on busy channel")
	}
	wire := pkt.WireLen()
	ser := c.SerializationDelay(wire)
	done := c.sim.Now() + ser
	c.busyUntil = done
	c.BytesSent += uint64(wire)
	c.PacketsSent++
	c.trace.Record(obs.SpanEvent{
		At: int64(c.sim.Now()), UID: pkt.Meta.UID, Node: c.traceID,
		Stage: obs.StageLinkTx, A: uint64(wire), B: uint64(ser),
	})
	// The frame's fate is decided now (loss models are sampled in
	// transmission order, keeping runs seed-replayable), but counted
	// and recorded when the last bit would have arrived.  The fate and
	// link epoch are packed into the event's arg word so the arrival
	// path captures nothing (see DeliverAt).
	downAtSend := c.down
	lost := !downAtSend && c.loss != nil && c.loss.Lost()
	arg := c.downEpoch << 3
	if downAtSend {
		arg |= argDown
	}
	if lost {
		arg |= argLost
	}
	if c.delay == 0 {
		// The transmit-complete interrupt and the last-bit arrival
		// coincide; fold both into one event, firing idle first — the
		// same order the two separate events have on delayed links.
		c.sim.AtPacket(done, c, pkt, arg|argIdle)
	} else {
		c.sim.At(done, c.idleFn)
		c.sim.AtPacket(done+c.delay, c, pkt, arg)
	}
	return done
}

// Arrival event arg layout: fate bits below the send-time link epoch.
const (
	argDown = 1 << 0
	argLost = 1 << 1
	argIdle = 1 << 2
)

// DeliverAt implements PacketDelivery: the frame's last bit arrives.
// A Tracer records through a nil receiver as a no-op, so none of the
// arrival paths need a nil guard.
//
//alloc:free
func (c *Channel) DeliverAt(pkt *core.Packet, arg uint64) {
	if arg&argIdle != 0 {
		c.notifyIdle()
	}
	wire := pkt.WireLen()
	switch {
	case arg&argDown != 0, c.down, c.downEpoch != arg>>3:
		// Sent into, or overtaken by, a dead link.
		c.PacketsDownDrops++
		c.trace.Record(obs.SpanEvent{
			At: int64(c.sim.Now()), UID: pkt.Meta.UID, Node: c.traceID,
			Stage: obs.StageLinkDown, A: uint64(wire),
		})
		pkt.Recycle()
	case arg&argLost != 0:
		// The frame occupied the wire but arrives corrupted and is
		// discarded by the receiver's FCS check.
		c.PacketsLost++
		c.trace.Record(obs.SpanEvent{
			At: int64(c.sim.Now()), UID: pkt.Meta.UID, Node: c.traceID,
			Stage: obs.StageLinkLoss, A: uint64(wire),
		})
		pkt.Recycle()
	default:
		c.trace.Record(obs.SpanEvent{
			At: int64(c.sim.Now()), UID: pkt.Meta.UID, Node: c.traceID,
			Stage: obs.StageLinkRx, A: uint64(c.dstPort), B: uint64(wire),
		})
		c.dst.Receive(pkt, c.dstPort)
	}
}
