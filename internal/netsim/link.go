package netsim

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/obs"
)

// Receiver is anything that can accept a packet from a link: a switch
// ingress pipeline or a host NIC.
type Receiver interface {
	// Receive is called when the last bit of the packet arrives on
	// the receiver's port.
	Receive(pkt *core.Packet, port int)
}

// Channel is one direction of a link: a serializing transmitter with a
// fixed bit rate and propagation delay.  The owning node (switch port
// or host NIC) is responsible for queueing; a Channel transmits one
// packet at a time and reports idleness through the OnIdle callback, a
// cut at the same place as a real MAC's transmit-complete interrupt.
type Channel struct {
	sim   *Sim
	rate  int64 // bits per second
	delay Time

	dst     Receiver
	dstPort int

	busyUntil Time
	onIdle    func()

	lossRate float64
	lossRand *rand.Rand

	// Packet-lifecycle tracing (nil when telemetry is disabled).
	trace   *obs.Tracer
	traceID uint32

	// Counters read by the port statistics machinery.
	BytesSent   uint64
	PacketsSent uint64
	// PacketsLost counts frames corrupted in flight by the loss model.
	PacketsLost uint64
}

// NewChannel builds a channel delivering to dst's port dstPort at rate
// bits/second with the given propagation delay.
func NewChannel(sim *Sim, rate int64, delay Time, dst Receiver, dstPort int) *Channel {
	if rate <= 0 {
		panic(fmt.Sprintf("netsim: channel rate %d must be positive", rate))
	}
	if delay < 0 {
		panic("netsim: negative propagation delay")
	}
	return &Channel{sim: sim, rate: rate, delay: delay, dst: dst, dstPort: dstPort}
}

// Rate returns the channel capacity in bits per second.
func (c *Channel) Rate() int64 { return c.rate }

// RateBytes returns the channel capacity in bytes per second, the unit
// the TPP memory map exposes ([Link:Capacity]).
func (c *Channel) RateBytes() uint32 { return uint32(c.rate / 8) }

// Delay returns the propagation delay.
func (c *Channel) Delay() Time { return c.delay }

// SetOnIdle registers the callback invoked each time a transmission
// completes; the owner uses it to dequeue the next packet.
func (c *Channel) SetOnIdle(fn func()) { c.onIdle = fn }

// SetLoss makes the channel drop each frame independently with
// probability p, using its own deterministic random source — the
// failure-injection knob for robustness tests ("TPPs are therefore
// subject to congestion", and on real links to corruption too).
func (c *Channel) SetLoss(p float64, seed int64) {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("netsim: loss probability %v out of [0,1)", p))
	}
	c.lossRate = p
	c.lossRand = rand.New(rand.NewSource(seed))
}

// SetTrace attaches the packet-lifecycle tracer; id identifies this
// channel in link span events (serialization start, loss, delivery).
// A nil tracer disables link tracing at zero per-packet cost.
func (c *Channel) SetTrace(tr *obs.Tracer, id uint32) {
	c.trace = tr
	c.traceID = id
}

// TraceID returns the identifier link span events carry (0 when
// tracing was never attached).
func (c *Channel) TraceID() uint32 { return c.traceID }

// Busy reports whether a transmission is in progress.
func (c *Channel) Busy() bool { return c.sim.Now() < c.busyUntil }

// SerializationDelay returns how long a frame of n bytes occupies the
// transmitter.
func (c *Channel) SerializationDelay(n int) Time {
	return Time(int64(n) * 8 * int64(Second) / c.rate)
}

// Send begins transmitting pkt.  It must only be called when the
// channel is idle (drive it from OnIdle); calling it while busy panics
// because it means the owner's queueing is broken.  It returns the time
// the last bit leaves the transmitter.
func (c *Channel) Send(pkt *core.Packet) Time {
	if c.Busy() {
		panic("netsim: Send on busy channel")
	}
	wire := pkt.WireLen()
	ser := c.SerializationDelay(wire)
	done := c.sim.Now() + ser
	c.busyUntil = done
	c.BytesSent += uint64(wire)
	c.PacketsSent++
	c.trace.Record(obs.SpanEvent{
		At: int64(c.sim.Now()), UID: pkt.Meta.UID, Node: c.traceID,
		Stage: obs.StageLinkTx, A: uint64(wire), B: uint64(ser),
	})
	c.sim.At(done, func() {
		if c.onIdle != nil {
			c.onIdle()
		}
	})
	if c.lossRate > 0 && c.lossRand.Float64() < c.lossRate {
		// The frame occupies the wire but arrives corrupted and is
		// discarded by the receiver's FCS check.
		c.PacketsLost++
		if c.trace != nil {
			c.sim.At(done+c.delay, func() {
				c.trace.Record(obs.SpanEvent{
					At: int64(c.sim.Now()), UID: pkt.Meta.UID, Node: c.traceID,
					Stage: obs.StageLinkLoss, A: uint64(wire),
				})
			})
		}
		return done
	}
	c.sim.At(done+c.delay, func() {
		c.trace.Record(obs.SpanEvent{
			At: int64(c.sim.Now()), UID: pkt.Meta.UID, Node: c.traceID,
			Stage: obs.StageLinkRx, A: uint64(c.dstPort), B: uint64(wire),
		})
		c.dst.Receive(pkt, c.dstPort)
	})
	return done
}
