package netsim

import (
	"math"
	"testing"

	"repro/internal/obs"
)

// TestRateBytesSaturates guards the [Link:Capacity] register against
// 32-bit wraparound: links at or beyond ~34.4 Gb/s must read as
// MaxUint32 bytes/sec, not as garbage that seeds nonsense fair-share
// rates in rcp.InitRateRegisters.
func TestRateBytesSaturates(t *testing.T) {
	s := New(1)
	cases := []struct {
		bps  int64
		want uint32
	}{
		{10_000_000, 1_250_000},              // 10 Mb/s, exact
		{1_000_000_000, 125_000_000},         // 1 Gb/s, exact
		{34_359_738_360, math.MaxUint32},     // exactly 2^32 bytes/s
		{40_000_000_000, math.MaxUint32},     // 40 Gb/s wrapped before
		{100_000_000_000, math.MaxUint32},    // 100 Gb/s
		{34_359_738_352, math.MaxUint32 - 1}, // just below the limit
	}
	for _, c := range cases {
		ch := NewChannel(s, c.bps, 0, &sink{sim: s}, 0)
		if got := ch.RateBytes(); got != c.want {
			t.Errorf("RateBytes(%d bps) = %d, want %d", c.bps, got, c.want)
		}
	}
}

// TestChannelFullLoss exercises SetLoss(1): every frame occupies the
// wire but none arrives — the blackout case fault plans rely on.
func TestChannelFullLoss(t *testing.T) {
	s := New(1)
	k := &sink{sim: s}
	ch := NewChannel(s, 1_000_000_000, 0, k, 0)
	ch.SetLoss(1, 3)
	for i := 0; i < 50; i++ {
		at := Time(i) * Millisecond
		s.At(at, func() { ch.Send(mkPacket(100)) })
	}
	s.Run()
	if len(k.pkts) != 0 {
		t.Fatalf("blackout delivered %d frames", len(k.pkts))
	}
	if ch.PacketsLost != 50 {
		t.Fatalf("PacketsLost = %d, want 50", ch.PacketsLost)
	}
}

// TestTracelessLossyChannel guards the nil-tracer harmonization: a
// channel with loss but no tracer must not panic on any of the three
// arrival paths (delivered, corrupted, link down).
func TestTracelessLossyChannel(t *testing.T) {
	s := New(1)
	k := &sink{sim: s}
	ch := NewChannel(s, 1_000_000_000, Microsecond, k, 0)
	ch.SetLoss(0.5, 11)
	for i := 0; i < 200; i++ {
		at := Time(i) * Millisecond
		s.At(at, func() { ch.Send(mkPacket(64)) })
	}
	s.At(150*Millisecond, func() { ch.SetUp(false) })
	s.At(170*Millisecond, func() { ch.SetUp(true) })
	s.Run() // must not panic
	if got := int(ch.PacketsLost+ch.PacketsDownDrops) + len(k.pkts); got != 200 {
		t.Fatalf("accounting: lost=%d down=%d delivered=%d, want 200 total",
			ch.PacketsLost, ch.PacketsDownDrops, len(k.pkts))
	}
}

// TestChannelDownDropsInFlightAndFuture pins the link-down contract:
// frames in flight when the link fails are dropped, frames sent while
// down are dropped, and frames sent after recovery arrive.
func TestChannelDownDropsInFlightAndFuture(t *testing.T) {
	s := New(1)
	k := &sink{sim: s}
	// 1 Gb/s, 1 ms propagation: a 100-byte frame serializes in 800 ns
	// and then spends a full millisecond in flight.
	ch := NewChannel(s, 1_000_000_000, Millisecond, k, 0)

	s.At(0, func() { ch.Send(mkPacket(100)) })               // in flight at cut
	s.At(500*Microsecond, func() { ch.SetUp(false) })        // cut mid-flight
	s.At(600*Microsecond, func() { ch.Send(mkPacket(100)) }) // sent while down
	s.At(2*Millisecond, func() { ch.SetUp(true) })
	s.At(3*Millisecond, func() { ch.Send(mkPacket(100)) }) // after recovery
	s.Run()

	if len(k.pkts) != 1 {
		t.Fatalf("delivered %d frames, want 1 (post-recovery only)", len(k.pkts))
	}
	if ch.PacketsDownDrops != 2 {
		t.Fatalf("PacketsDownDrops = %d, want 2", ch.PacketsDownDrops)
	}
	if !ch.Up() {
		t.Fatal("link should be up after recovery")
	}
}

// TestChannelFlapKeepsTransmitterDraining: while down the transmitter
// still serializes (OnIdle keeps firing), so a queue feeding the
// channel drains rather than wedging — recovery then needs no special
// kick.
func TestChannelFlapKeepsTransmitterDraining(t *testing.T) {
	s := New(1)
	k := &sink{sim: s}
	ch := NewChannel(s, 1_000_000_000, 0, k, 0)
	ch.SetUp(false)

	queue := 10
	var pump func()
	pump = func() {
		if queue == 0 {
			return
		}
		queue--
		ch.Send(mkPacket(1000))
	}
	ch.SetOnIdle(pump)
	s.At(0, pump)
	s.Run()
	if queue != 0 {
		t.Fatalf("transmitter wedged with %d frames queued", queue)
	}
	if len(k.pkts) != 0 {
		t.Fatalf("down link delivered %d frames", len(k.pkts))
	}
}

// TestChannelDownRecordsSpan: the link-down drop is visible in the
// span stream as StageLinkDown.
func TestChannelDownRecordsSpan(t *testing.T) {
	s := New(1)
	k := &sink{sim: s}
	ch := NewChannel(s, 1_000_000_000, 0, k, 0)
	tr := obs.NewTracer(64)
	ch.SetTrace(tr, 9)
	ch.SetUp(false)
	s.At(0, func() { ch.Send(mkPacket(100)) })
	s.Run()
	var downs int
	for _, ev := range tr.Events() {
		if ev.Stage == obs.StageLinkDown && ev.Node == 9 {
			downs++
		}
	}
	if downs != 1 {
		t.Fatalf("StageLinkDown events = %d, want 1", downs)
	}
}

// TestGilbertElliottBurstiness: with a sticky Bad state the model must
// produce longer loss runs than Bernoulli loss of the same average
// rate, and must replay exactly for a given seed.
func TestGilbertElliottBurstiness(t *testing.T) {
	run := func(seed int64) (lostTotal int, maxRun int) {
		ge := NewGilbertElliott(0.01, 0.1, 0, 1, seed)
		cur := 0
		for i := 0; i < 20_000; i++ {
			if ge.Lost() {
				lostTotal++
				cur++
				if cur > maxRun {
					maxRun = cur
				}
			} else {
				cur = 0
			}
		}
		return
	}
	lost1, max1 := run(42)
	lost2, max2 := run(42)
	if lost1 != lost2 || max1 != max2 {
		t.Fatal("Gilbert-Elliott pattern not seed-replayable")
	}
	if lost1 == 0 {
		t.Fatal("no losses produced")
	}
	// Mean bad-state dwell is 1/0.1 = 10 frames; bursts well beyond a
	// Bernoulli process of the same mean rate must appear.
	if max1 < 5 {
		t.Fatalf("max loss run = %d, expected bursty (>= 5)", max1)
	}
}

// TestGilbertElliottOnChannel wires the bursty model into a channel
// and checks loss accounting stays exact.
func TestGilbertElliottOnChannel(t *testing.T) {
	s := New(1)
	k := &sink{sim: s}
	ch := NewChannel(s, 1_000_000_000, 0, k, 0)
	ch.SetLossModel(NewGilbertElliott(0.05, 0.2, 0.001, 0.9, 17))
	const frames = 2000
	for i := 0; i < frames; i++ {
		at := Time(i) * Microsecond * 10
		s.At(at, func() { ch.Send(mkPacket(100)) })
	}
	s.Run()
	if ch.PacketsLost == 0 {
		t.Fatal("bursty model produced no loss")
	}
	if int(ch.PacketsLost)+len(k.pkts) != frames {
		t.Fatalf("accounting: lost=%d delivered=%d", ch.PacketsLost, len(k.pkts))
	}
}
