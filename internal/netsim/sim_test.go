package netsim

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestUnitsAndFormatting(t *testing.T) {
	if Seconds(1.5) != 1500*Millisecond {
		t.Error("Seconds conversion wrong")
	}
	if Milliseconds(2) != 2*Millisecond {
		t.Error("Milliseconds conversion wrong")
	}
	if got := (1500 * Millisecond).Seconds(); got != 1.5 {
		t.Errorf("Time.Seconds = %v", got)
	}
	if got := (1 * Microsecond).String(); got != "0.000001s" {
		t.Errorf("String = %q", got)
	}
}

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var order []int
	s.At(30, func() { order = append(order, 3) })
	s.At(10, func() { order = append(order, 1) })
	s.At(20, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != 30 {
		t.Fatalf("final time = %v", s.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

// Property: events fire in nondecreasing time regardless of insertion
// order, and FIFO within a timestamp.
func TestEventHeapInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	s := New(1)
	type stamp struct {
		at  Time
		seq int
	}
	var fired []stamp
	n := 0
	var schedule func(depth int)
	schedule = func(depth int) {
		at := s.Now() + Time(r.Intn(50))
		mySeq := n
		n++
		s.At(at, func() {
			fired = append(fired, stamp{s.Now(), mySeq})
			if depth < 3 && r.Intn(2) == 0 {
				schedule(depth + 1)
			}
		})
	}
	for i := 0; i < 300; i++ {
		schedule(0)
	}
	s.Run()
	if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i].at < fired[j].at }) {
		t.Fatal("events fired out of time order")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New(1)
	s.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("past scheduling did not panic")
			}
		}()
		s.At(50, func() {})
	})
	s.Run()
}

func TestAfter(t *testing.T) {
	s := New(1)
	var at Time
	s.At(100, func() {
		s.After(25, func() { at = s.Now() })
	})
	s.Run()
	if at != 125 {
		t.Fatalf("After fired at %v", at)
	}
}

func TestRunUntil(t *testing.T) {
	s := New(1)
	count := 0
	s.At(10, func() { count++ })
	s.At(20, func() { count++ })
	s.At(30, func() { count++ })
	s.RunUntil(20)
	if count != 2 {
		t.Fatalf("count = %d after RunUntil(20)", count)
	}
	if s.Now() != 20 {
		t.Fatalf("now = %v", s.Now())
	}
	s.RunUntil(100)
	if count != 3 || s.Now() != 100 {
		t.Fatalf("count=%d now=%v", count, s.Now())
	}
}

func TestStop(t *testing.T) {
	s := New(1)
	count := 0
	s.At(1, func() { count++; s.Stop() })
	s.At(2, func() { count++ })
	s.Run()
	if count != 1 {
		t.Fatalf("count = %d, Stop ignored", count)
	}
}

func TestTicker(t *testing.T) {
	s := New(1)
	var times []Time
	tk := s.Every(10, 5, func() { times = append(times, s.Now()) })
	s.At(27, func() { tk.Stop() })
	s.Run()
	want := []Time{10, 15, 20, 25}
	if len(times) != len(want) {
		t.Fatalf("ticks = %v", times)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("ticks = %v", times)
		}
	}
}

func TestTickerStopFromCallback(t *testing.T) {
	s := New(1)
	count := 0
	var tk *Ticker
	tk = s.Every(0, 1, func() {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	s.Run()
	if count != 3 {
		t.Fatalf("count = %d", count)
	}
}

func TestTickerBadPeriodPanics(t *testing.T) {
	s := New(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Every(0, 0, func() {})
}

func TestDeterminism(t *testing.T) {
	run := func() []int64 {
		s := New(42)
		var vals []int64
		s.Every(0, 7, func() {
			vals = append(vals, s.Rand().Int63n(1000))
			if len(vals) >= 50 {
				s.Stop()
			}
		})
		s.Run()
		return vals
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different runs")
		}
	}
}

// sink collects received packets with their arrival times.
type sink struct {
	sim     *Sim
	pkts    []*core.Packet
	ports   []int
	arrived []Time
}

func (k *sink) Receive(p *core.Packet, port int) {
	k.pkts = append(k.pkts, p)
	k.ports = append(k.ports, port)
	k.arrived = append(k.arrived, k.sim.Now())
}

func mkPacket(payload int) *core.Packet {
	return &core.Packet{
		Eth:    core.Ethernet{Type: core.EtherTypeIPv4},
		PadLen: payload,
	}
}

func TestChannelTiming(t *testing.T) {
	s := New(1)
	k := &sink{sim: s}
	// 8 Mb/s: 1 byte per microsecond.  Delay 100us.
	ch := NewChannel(s, 8_000_000, 100*Microsecond, k, 3)
	pkt := mkPacket(986) // 986 + 14 eth = 1000 bytes = 1ms serialization
	var doneAt Time
	s.At(0, func() { doneAt = ch.Send(pkt) })
	s.Run()
	if doneAt != 1*Millisecond {
		t.Fatalf("serialization done at %v", doneAt)
	}
	if len(k.pkts) != 1 || k.ports[0] != 3 {
		t.Fatalf("delivery: %v ports=%v", k.pkts, k.ports)
	}
	if k.arrived[0] != 1*Millisecond+100*Microsecond {
		t.Fatalf("arrival at %v", k.arrived[0])
	}
	if ch.BytesSent != 1000 || ch.PacketsSent != 1 {
		t.Fatalf("counters: %d bytes %d pkts", ch.BytesSent, ch.PacketsSent)
	}
}

func TestChannelBusyAndOnIdle(t *testing.T) {
	s := New(1)
	k := &sink{sim: s}
	ch := NewChannel(s, 8_000_000, 0, k, 0)
	idleCalls := 0
	ch.SetOnIdle(func() { idleCalls++ })
	s.At(0, func() {
		ch.Send(mkPacket(86)) // 100 bytes = 100us
		if !ch.Busy() {
			t.Error("channel should be busy during transmission")
		}
	})
	s.Run()
	if idleCalls != 1 {
		t.Fatalf("OnIdle called %d times", idleCalls)
	}
	if ch.Busy() {
		t.Fatal("channel busy after completion")
	}
}

func TestChannelSendWhileBusyPanics(t *testing.T) {
	s := New(1)
	k := &sink{sim: s}
	ch := NewChannel(s, 8_000_000, 0, k, 0)
	s.At(0, func() {
		ch.Send(mkPacket(1000))
		defer func() {
			if recover() == nil {
				t.Error("Send while busy did not panic")
			}
		}()
		ch.Send(mkPacket(10))
	})
	s.Run()
}

func TestChannelBackToBackThroughput(t *testing.T) {
	// Saturating the channel must deliver exactly rate bytes/sec.
	s := New(1)
	k := &sink{sim: s}
	ch := NewChannel(s, 10_000_000, 0, k, 0) // 10 Mb/s
	sent := 0
	var pump func()
	pump = func() {
		if sent >= 100 {
			return
		}
		sent++
		ch.Send(mkPacket(1236)) // 1250 bytes on the wire
	}
	ch.SetOnIdle(pump)
	s.At(0, pump)
	s.Run()
	// 100 packets * 1250 bytes = 125000 bytes at 1.25 MB/s = 0.1 s.
	if got := s.Now(); got != Seconds(0.1) {
		t.Fatalf("drained at %v, want 0.1s", got)
	}
	if len(k.pkts) != 100 {
		t.Fatalf("delivered %d", len(k.pkts))
	}
}

func TestChannelValidation(t *testing.T) {
	s := New(1)
	k := &sink{sim: s}
	for _, fn := range []func(){
		func() { NewChannel(s, 0, 0, k, 0) },
		func() { NewChannel(s, 100, -1, k, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
	ch := NewChannel(s, 8000, 5, k, 1)
	if ch.Rate() != 8000 || ch.RateBytes() != 1000 || ch.Delay() != 5 {
		t.Fatal("accessors wrong")
	}
	if d := ch.SerializationDelay(1000); d != Second {
		t.Fatalf("SerializationDelay = %v", d)
	}
}

func TestRunUntilPast(t *testing.T) {
	s := New(1)
	count := 0
	s.At(10, func() { count++ })
	s.At(50, func() { count++ })
	s.RunUntil(30)
	if count != 1 || s.Now() != 30 {
		t.Fatalf("setup: count=%d now=%v", count, s.Now())
	}
	// A target at or before now must not rewind the clock and must not
	// fire events scheduled in the future.
	s.RunUntil(20)
	if s.Now() != 30 {
		t.Fatalf("RunUntil into the past moved the clock to %v", s.Now())
	}
	if count != 1 {
		t.Fatalf("RunUntil into the past fired future events: count=%d", count)
	}
	s.RunUntil(30) // t == now: same contract
	if s.Now() != 30 || count != 1 {
		t.Fatalf("RunUntil(now): count=%d now=%v", count, s.Now())
	}
	s.RunUntil(50)
	if count != 2 || s.Now() != 50 {
		t.Fatalf("resume: count=%d now=%v", count, s.Now())
	}
}

func TestTickerStopByPeerAtSameInstant(t *testing.T) {
	// An event at the same timestamp as a pending tick stops the
	// ticker; the already-queued tick must observe the stop and not
	// fire (nor reschedule).
	s := New(1)
	fires := 0
	tk := s.Every(10, 10, func() { fires++ })
	s.At(20, func() { tk.Stop() }) // queued before the t=20 tick
	s.Run()
	if fires != 1 {
		t.Fatalf("ticker fired %d times, want 1 (t=10 only)", fires)
	}
	if s.Pending() != 0 {
		t.Fatalf("stopped ticker left %d events queued", s.Pending())
	}
}

func TestSameTimeFIFONested(t *testing.T) {
	// Events scheduled *during* processing of time T, at time T, run
	// after everything already queued for T — scheduling order is
	// firing order even across nesting levels.
	s := New(1)
	var order []string
	s.At(5, func() {
		order = append(order, "a")
		s.At(5, func() { order = append(order, "a.child") })
	})
	s.At(5, func() { order = append(order, "b") })
	s.Run()
	want := "a,b,a.child"
	got := strings.Join(order, ",")
	if got != want {
		t.Fatalf("nested same-time order = %q, want %q", got, want)
	}
}
