package main

import (
	"repro/internal/aimd"
	"repro/internal/fct"
	"repro/internal/netsim"
	"repro/internal/trace"
)

// runFCT is the extension experiment for RCP's headline metric: flow
// completion time.  A finite flow joins a 10 Mb/s bottleneck carrying
// two background flows; RCP* reads its fair share from the rate
// register and finishes near the fair-share bound, while the TCP-style
// AIMD flow pays a fixed ramp-up penalty that dominates short flows.
func runFCT(out *output) error {
	sizes := []uint64{20_000, 50_000, 100_000, 250_000, 500_000, 1_000_000}
	star := fct.SweepSizes(aimd.SchemeRCPStar, sizes)
	tcp := fct.SweepSizes(aimd.SchemeAIMD, sizes)

	out.printf("extension: flow completion time vs flow size (2 background flows, 10 Mb/s bottleneck)\n\n")
	tbl := trace.NewTable("flow size (KB)", "fair ideal (ms)",
		"RCP* FCT (ms)", "AIMD FCT (ms)", "RCP* slowdown", "AIMD slowdown")
	var f *trace.CSV
	if file, err := out.csvFile("fct.csv"); err != nil {
		return err
	} else if file != nil {
		defer file.Close()
		f = trace.NewCSV(file, "size_bytes", "fair_ideal_ms", "rcpstar_ms", "aimd_ms")
	}
	for i, size := range sizes {
		ms := func(t netsim.Time) float64 { return float64(t) / float64(netsim.Millisecond) }
		tbl.Row(size/1000, ms(star[i].FairIdeal),
			ms(star[i].FCT), ms(tcp[i].FCT),
			sprintf("%.1fx", star[i].Slowdown()), sprintf("%.1fx", tcp[i].Slowdown()))
		if f != nil {
			f.Row(size, ms(star[i].FairIdeal), ms(star[i].FCT), ms(tcp[i].FCT))
		}
	}
	out.printf("%s\nshort flows: RCP* wins by the ramp-up cost AIMD must pay; the gap closes as size grows\n",
		tbl.String())
	return nil
}
