package main

import (
	"repro/internal/accounting"
	"repro/internal/agent"
	"repro/internal/asic"
	"repro/internal/endhost"
	"repro/internal/mem"
	"repro/internal/netsim"
	"repro/internal/topo"
	"repro/internal/trace"
)

// runAccounting demonstrates §2.2's consistency argument: three hosts
// concurrently increment one shared SRAM counter through the network,
// once with CSTORE (linearizable) and once with blind read-modify-write.
func runAccounting(out *output) error {
	run := func(proto accounting.Protocol) (final uint32, retries uint64) {
		sim := netsim.New(1)
		n := topo.NewNetwork(sim)
		sw := n.AddSwitch(asic.Config{ID: 5, Ports: 8})
		var writers []*endhost.Host
		var probers []*endhost.Prober
		for i := 0; i < 3; i++ {
			h := n.AddHost()
			n.LinkHost(h, sw, topo.Mbps(100, 50*netsim.Microsecond))
			writers = append(writers, h)
			probers = append(probers, endhost.NewProber(h))
		}
		target := n.AddHost()
		n.LinkHost(target, sw, topo.Mbps(100, 50*netsim.Microsecond))
		n.PrimeL2(5 * netsim.Millisecond)

		a := agent.New(sw)
		task, err := a.Register("accounting", 1, 0)
		if err != nil {
			panic(err)
		}
		addr := task.Region.Base

		counters := make([]*accounting.Counter, len(writers))
		for i := range writers {
			c := accounting.NewCounter(probers[i], target.MAC, target.IP,
				sw.ID(), addr, proto)
			counters[i] = c
			remaining := 50
			var next func(uint32)
			next = func(uint32) {
				remaining--
				if remaining > 0 {
					c.Add(1, next)
				}
			}
			c.Add(1, next)
		}
		sim.RunUntil(sim.Now() + 30*netsim.Second)
		for _, c := range counters {
			retries += c.Retries
		}
		return sw.SRAM(mem.SRAMIndex(addr)), retries
	}

	atomicFinal, atomicRetries := run(accounting.Atomic)
	racyFinal, _ := run(accounting.Racy)

	out.printf("§2.2 consistency: 3 hosts x 50 concurrent increments of one shared SRAM counter\n\n")
	tbl := trace.NewTable("protocol", "final value", "expected", "lost updates", "CSTORE retries")
	tbl.Row("CSTORE (linearizable)", atomicFinal, 150, 150-int(atomicFinal), atomicRetries)
	tbl.Row("LOAD+STORE (racy)", racyFinal, 150, 150-int(racyFinal), "-")
	out.printf("%s\nthe conditional store instruction is what makes in-network accounting exact\n", tbl.String())

	if f, err := out.csvFile("accounting.csv"); err != nil {
		return err
	} else if f != nil {
		defer f.Close()
		c := trace.NewCSV(f, "protocol", "final", "expected", "retries")
		c.Row("cstore", atomicFinal, 150, atomicRetries)
		c.Row("racy", racyFinal, 150, 0)
		return c.Err()
	}
	return nil
}
