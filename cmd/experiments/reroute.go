package main

import (
	"fmt"

	"repro/internal/asic"
	"repro/internal/core"
	"repro/internal/endhost"
	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/mem"
	"repro/internal/netsim"
	"repro/internal/reflex"
	"repro/internal/tcam"
	"repro/internal/topo"
	"repro/internal/trace"
)

// The reroute experiment kills a leaf-spine uplink mid-flows and
// measures how fast each repair mechanism restores delivery:
//
//   - reflex: the dataplane arm on the leaf watches its own round-trip
//     heartbeat evidence and CAS-rewrites the armed prefix onto the
//     pre-authorized backup spine — no controller in the loop.
//   - prober: the conventional path — an end-host prober notices the
//     echo timeout (which by construction cannot happen in less than an
//     end-to-end RTT) and the fabric controller then converges the
//     routes onto the backup spine.
//
// Fabric hops carry 500us of propagation so the end-to-end RTT is a
// measurable ~2ms: the point of the comparison is that the reflex
// detects and repairs in a fraction of one RTT, while any echo-timeout
// scheme needs multiple RTTs before it even suspects the failure.

const (
	rerouteStreamStart  = netsim.Millisecond
	rerouteStreamEnd    = 25 * netsim.Millisecond
	rerouteStreamPeriod = 20 * netsim.Microsecond
	rerouteKillAt       = 10 * netsim.Millisecond
	rerouteDrainUntil   = 30 * netsim.Millisecond
)

type rerouteRow struct {
	scheme   string
	rttUS    float64 // measured end-to-end probe RTT, pre-failure
	detectUS float64 // kill -> repair write (reflex fire / converge apply)
	stallUS  float64 // longest gap between arrivals at the sink
	sent     uint64
	lost     uint64
}

// runRerouteScheme runs one repair scheme on a fresh simulation and
// returns its measured row.
func runRerouteScheme(useReflex bool) (rerouteRow, error) {
	row := rerouteRow{scheme: "prober"}
	if useReflex {
		row.scheme = "reflex"
	}
	sim := netsim.New(1)
	edge := topo.Mbps(1000, 5*netsim.Microsecond)
	fab := topo.Mbps(1000, 500*netsim.Microsecond)
	_, hosts, leaves, spines := topo.LeafSpine(sim, 2, 2, 2, edge, fab, asic.Config{})
	h00, h01 := hosts[0][0], hosts[0][1]
	h10, h11 := hosts[1][0], hosts[1][1]

	insert := func(sw *asic.Switch, prio int, ip uint32, port int) {
		v, m := tcam.DstIPRule(ip)
		sw.TCAM().Insert(fabric.BandBase+prio, v, m, tcam.Action{OutPort: port})
	}
	insert(leaves[0], 10, h10.IP, 0)
	insert(leaves[0], 11, h11.IP, 0)
	insert(leaves[0], 12, h00.IP, 2)
	insert(leaves[0], 13, h01.IP, 3)
	insert(leaves[1], 10, h10.IP, 2)
	insert(leaves[1], 11, h11.IP, 3)
	insert(leaves[1], 12, h00.IP, 0)
	insert(leaves[1], 13, h01.IP, 0)
	for _, sp := range spines {
		insert(sp, 10, h10.IP, 1)
		insert(sp, 11, h11.IP, 1)
		insert(sp, 12, h00.IP, 0)
		insert(sp, 13, h01.IP, 0)
	}

	// The repair mechanism under test.
	var arm *reflex.Arm
	repairAt := netsim.Time(0)
	if useReflex {
		var err error
		// DeadAfter must clear the steady-state heartbeat lag: the
		// monitor's round trip is ~1ms (two 500us fabric hops), i.e.
		// ~20 heartbeat periods always in flight.  26 leaves a margin
		// of ~6 periods, so detection costs ~300us after the echoes
		// stop.
		arm, err = reflex.Attach(sim, leaves[0], reflex.Config{
			HeartbeatEvery: 50 * netsim.Microsecond,
			DeadAfter:      26,
		})
		if err != nil {
			return row, err
		}
		if err := arm.Monitor(0, h00.MAC, h00.IP); err != nil {
			return row, err
		}
		if err := arm.Monitor(1, h00.MAC, h00.IP); err != nil {
			return row, err
		}
		if err := arm.Authorize("h10-via-spine1", h10.IP, 0, 1); err != nil {
			return row, err
		}
		if err := arm.Authorize("h11-via-spine1", h11.IP, 0, 1); err != nil {
			return row, err
		}
	}

	// Probers ride the h01 -> h11 pair so the measured h10 sink sees
	// stream packets only.  Both schemes measure the pre-failure RTT;
	// the prober scheme also uses echo timeouts as its failure
	// detector.
	prober := endhost.NewProber(h01)
	probeTPP := func() *core.TPP {
		return core.NewTPP(core.AddrStack, []core.Instruction{
			{Op: core.OpPUSH, A: uint16(mem.QueueBase + mem.QueueBytes)},
		}, 8)
	}
	var rttSent netsim.Time
	sim.At(3*netsim.Millisecond, func() {
		rttSent = sim.Now()
		prober.Probe(h11.MAC, h11.IP, probeTPP(), func(*core.TPP) {
			row.rttUS = float64(sim.Now()-rttSent) / float64(netsim.Microsecond)
		})
	})
	if !useReflex {
		// Conventional repair: fabric controller converges both
		// prefixes onto spine 1 once a probe deadline fires.  The
		// deadline must exceed one end-to-end RTT or healthy echoes
		// would be declared lost.
		ctrl := fabric.New(sim)
		ctrl.Register("leaf0", leaves[0])
		backupSpec := fabric.Spec{Devices: []fabric.DeviceSpec{{
			Device: "leaf0",
			Routes: []fabric.Route{
				{DstIP: h10.IP, Priority: 10, OutPort: 1},
				{DstIP: h11.IP, Priority: 11, OutPort: 1},
				{DstIP: h00.IP, Priority: 12, OutPort: 2},
				{DstIP: h01.IP, Priority: 13, OutPort: 3},
			},
		}}}
		// Like any production liveness detector (BFD's multiplier, LACP
		// timeouts), the prober demands consecutive losses before it
		// declares the path dead: repairing on a single missing echo
		// would flap routes on every transient drop.
		const confirm = 3
		repaired, strikes := false, 0
		cfg := endhost.ProbeConfig{Timeout: 2500 * netsim.Microsecond}
		sim.Every(rerouteStreamStart, 500*netsim.Microsecond, func() {
			if sim.Now() > 20*netsim.Millisecond {
				return
			}
			prober.ProbeCfg(h11.MAC, h11.IP, probeTPP(), cfg,
				func(*core.TPP) { strikes = 0 },
				func() {
					strikes++
					if repaired || strikes < confirm {
						return
					}
					repaired = true
					ctrl.Converge(backupSpec, fabric.ConvergeConfig{}, func(fabric.ConvergeResult) {
						repairAt = sim.Now()
					})
				})
		})
	}

	// Workload: a steady h00 -> h10 stream across the uplink that dies.
	sim.Every(rerouteStreamStart, rerouteStreamPeriod, func() {
		if sim.Now() >= rerouteStreamEnd {
			return
		}
		row.sent++
		h00.Send(h00.NewPacket(h10.MAC, h10.IP, 4000, 4001, 200))
	})

	// Kill both directions of the primary uplink mid-flows.
	inj := faults.NewInjector(sim, nil)
	inj.RegisterLink("leaf0-spine0",
		leaves[0].Port(0).Channel(), spines[0].Port(0).Channel())
	if err := inj.Schedule(faults.Plan{Events: []faults.Event{
		{At: rerouteKillAt, Kind: faults.LinkDown, Target: "leaf0-spine0"},
	}}); err != nil {
		return row, err
	}

	// Arrival sampler: the longest inter-arrival gap at the sink after
	// the kill is the outage the scheme failed to hide.  5us sampling
	// bounds the measurement error well under one stream period.
	var lastArrival netsim.Time
	var lastSeen uint64
	var maxGap netsim.Time
	sim.Every(rerouteStreamStart, 5*netsim.Microsecond, func() {
		if h10.Received > lastSeen {
			if lastArrival > 0 && sim.Now() > rerouteKillAt {
				if gap := sim.Now() - lastArrival; gap > maxGap {
					maxGap = gap
				}
			}
			lastSeen = h10.Received
			lastArrival = sim.Now()
		}
		if useReflex && repairAt == 0 && arm.Fires() > 0 {
			repairAt = sim.Now()
		}
	})

	sim.RunUntil(rerouteDrainUntil)

	if repairAt == 0 {
		return row, fmt.Errorf("%s: repair never happened", row.scheme)
	}
	row.detectUS = float64(repairAt-rerouteKillAt) / float64(netsim.Microsecond)
	row.stallUS = float64(maxGap) / float64(netsim.Microsecond)
	row.lost = row.sent - h10.Received
	if row.rttUS == 0 {
		return row, fmt.Errorf("%s: RTT probe echo lost", row.scheme)
	}
	return row, nil
}

// runReroute compares reflex fast-reroute against prober-driven
// controller repair on the same uplink failure.
func runReroute(out *output) error {
	reflexRow, err := runRerouteScheme(true)
	if err != nil {
		return err
	}
	proberRow, err := runRerouteScheme(false)
	if err != nil {
		return err
	}
	rows := []rerouteRow{reflexRow, proberRow}

	out.printf("reflex fast-reroute vs prober-driven repair: leaf0-spine0 uplink killed at %v under a %v-period stream\n",
		rerouteKillAt, rerouteStreamPeriod)
	out.printf("(fabric hops carry 500us propagation; the measured end-to-end probe RTT is the floor any echo-timeout detector pays)\n\n")
	tbl := trace.NewTable("scheme", "rtt us", "detect us", "stall us", "sent", "lost")
	for _, r := range rows {
		tbl.Row(r.scheme, sprintf("%.0f", r.rttUS), sprintf("%.0f", r.detectUS),
			sprintf("%.0f", r.stallUS), r.sent, r.lost)
	}
	out.printf("%s\n", tbl.String())
	out.printf("reflex repaired %.0fus after the kill (%.2fx the e2e RTT) losing %d packets; the prober scheme needed %.0fus (%.2fx RTT) and lost %d\n",
		reflexRow.detectUS, reflexRow.detectUS/reflexRow.rttUS, reflexRow.lost,
		proberRow.detectUS, proberRow.detectUS/proberRow.rttUS, proberRow.lost)

	// The acceptance contract, measured: sub-RTT recovery, strictly
	// fewer losses than the timeout-driven baseline.
	if reflexRow.stallUS >= reflexRow.rttUS {
		return fmt.Errorf("reflex stall %.0fus is not sub-RTT (rtt %.0fus)",
			reflexRow.stallUS, reflexRow.rttUS)
	}
	if reflexRow.lost >= proberRow.lost {
		return fmt.Errorf("reflex lost %d >= prober repair's %d", reflexRow.lost, proberRow.lost)
	}

	if f, err := out.csvFile("reroute.csv"); err != nil {
		return err
	} else if f != nil {
		defer f.Close()
		c := trace.NewCSV(f, "scheme", "rtt_us", "detect_us", "stall_us", "sent", "lost")
		for _, r := range rows {
			c.Row(r.scheme, r.rttUS, r.detectUS, r.stallUS, r.sent, r.lost)
		}
		return c.Err()
	}
	return nil
}
