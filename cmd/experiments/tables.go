package main

import (
	"fmt"

	"repro/internal/asic"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/netsim"
	"repro/internal/tcpu"
	"repro/internal/topo"
	"repro/internal/trace"
)

// runTable1 demonstrates every instruction of Table 1 on a live switch
// view, printing its architectural effect and its TCPU pipeline cost.
func runTable1(out *output) error {
	sim := netsim.New(1)
	n := topo.NewNetwork(sim)
	sw := n.AddSwitch(asic.Config{ID: 7, Ports: 2, TCPU: tcpu.Config{MaxInstructions: 8}})
	h := n.AddHost()
	n.LinkHost(h, sw, topo.Mbps(100, 0))
	sim.RunUntil(netsim.Millisecond)

	sramAddr := mem.SRAMBase + 0x10
	swID := mem.SwitchBase + mem.SwitchID
	qsize := mem.QueueBase + mem.QueueBytes

	type demo struct {
		name    string
		meaning string
		tpp     *core.TPP
		effect  func(*core.TPP, tcpu.Result) string
	}

	mkStack := func(ins []core.Instruction, words int) *core.TPP {
		return core.NewTPP(core.AddrStack, ins, words)
	}

	loadTPP := mkStack([]core.Instruction{{Op: core.OpLOAD, A: uint16(swID), B: 0}}, 1)
	pushTPP := mkStack([]core.Instruction{{Op: core.OpPUSH, A: uint16(qsize)}}, 1)
	storeTPP := mkStack([]core.Instruction{{Op: core.OpSTORE, A: uint16(sramAddr), B: 0}}, 1)
	storeTPP.SetWord(0, 4242)
	popTPP := mkStack([]core.Instruction{{Op: core.OpPOP, A: uint16(sramAddr)}}, 1)
	popTPP.SetWord(0, 777)
	popTPP.Ptr = 4
	cstoreTPP := mkStack([]core.Instruction{{Op: core.OpCSTORE, A: uint16(sramAddr), B: 0}}, 3)
	cstoreTPP.SetWord(0, 777) // cond: expect POP's value
	cstoreTPP.SetWord(1, 999) // src
	cexecTPP := mkStack([]core.Instruction{
		{Op: core.OpCEXEC, A: uint16(swID), B: 0},
		{Op: core.OpPUSH, A: uint16(swID)},
	}, 4)
	cexecTPP.SetWord(0, 0xFFFFFFFF)
	cexecTPP.SetWord(1, 7) // matches switch id 7
	cexecTPP.Ptr = 8       // stack begins after the two immediates

	demos := []demo{
		{"LOAD", "copy values from switch to packet", loadTPP,
			func(t *core.TPP, r tcpu.Result) string {
				return sprintf("pkt[0] = SwitchID = %d", t.Word(0))
			}},
		{"PUSH", "copy values from switch to packet (stack)", pushTPP,
			func(t *core.TPP, r tcpu.Result) string {
				return sprintf("pushed QueueSize=%d, SP 0->%d", t.Word(0), t.Ptr)
			}},
		{"STORE", "copy values from packet to switch", storeTPP,
			func(t *core.TPP, r tcpu.Result) string {
				return sprintf("SRAM[0x10] = %d", sw.SRAM(0x10))
			}},
		{"POP", "copy values from packet to switch (stack)", popTPP,
			func(t *core.TPP, r tcpu.Result) string {
				return sprintf("SRAM[0x10] = %d, SP 4->%d", sw.SRAM(0x10), t.Ptr)
			}},
		{"CSTORE", "conditional store for atomic operations", cstoreTPP,
			func(t *core.TPP, r tcpu.Result) string {
				return sprintf("old=%d matched cond, SRAM[0x10] = %d", t.Word(2), sw.SRAM(0x10))
			}},
		{"CEXEC", "conditionally execute subsequent instructions", cexecTPP,
			func(t *core.TPP, r tcpu.Result) string {
				return sprintf("id matched, executed %d instructions", r.Executed)
			}},
	}

	tbl := trace.NewTable("instruction", "meaning", "cycles", "effect")
	var csvRows [][]any
	for _, d := range demos {
		view := sw.ViewForTesting(nil, 0)
		res := (tcpu.Config{MaxInstructions: 8}).Exec(d.tpp, view)
		if res.Fault != nil {
			return res.Fault
		}
		tbl.Row(d.name, d.meaning, res.Cycles, d.effect(d.tpp, res))
		csvRows = append(csvRows, []any{d.name, d.meaning, res.Cycles})
	}
	out.printf("Table 1: the TPP instruction set, demonstrated on switch id=7\n%s", tbl.String())

	if f, err := out.csvFile("table1.csv"); err != nil {
		return err
	} else if f != nil {
		defer f.Close()
		c := trace.NewCSV(f, "instruction", "meaning", "cycles")
		for _, r := range csvRows {
			c.Row(r...)
		}
		return c.Err()
	}
	return nil
}

// runTable2 walks every statistic of the unified memory map on a
// lightly loaded switch, grouped by namespace as in Table 2.
func runTable2(out *output) error {
	sim := netsim.New(1)
	n := topo.NewNetwork(sim)
	sw := n.AddSwitch(asic.Config{ID: 3, Ports: 4})
	h1, h2 := n.AddHost(), n.AddHost()
	n.LinkHost(h1, sw, topo.Mbps(100, 10*netsim.Microsecond))
	n.LinkHost(h2, sw, topo.Mbps(100, 10*netsim.Microsecond))
	n.PrimeL2(netsim.Millisecond)
	// Some traffic so the counters are alive.
	for i := 0; i < 50; i++ {
		h1.Send(h1.NewPacket(h2.MAC, h2.IP, 1, 2, 1000))
	}
	sim.RunUntil(sim.Now() + netsim.Second)

	view := sw.ViewForTesting(nil, 1)
	tbl := trace.NewTable("namespace", "statistic", "byte addr", "writable", "value")
	var f *trace.CSV
	if file, err := out.csvFile("table2.csv"); err != nil {
		return err
	} else if file != nil {
		defer file.Close()
		f = trace.NewCSV(file, "namespace", "statistic", "byte_addr", "writable", "value")
	}
	for _, name := range mem.SymbolNames() {
		a, _ := mem.LookupSymbol(name)
		v, err := view.Load(a)
		if err != nil {
			return err
		}
		ns := mem.NamespaceOf(a).String()
		w := mem.Writable(a)
		tbl.Row(ns, name, sprintf("%#x", a.ByteAddr()), w, v)
		if f != nil {
			f.Row(ns, name, sprintf("%#x", a.ByteAddr()), w, v)
		}
	}
	out.printf("Table 2: statistics namespaces (live values after 1s of traffic)\n%s", tbl.String())
	return nil
}

func sprintf(format string, args ...any) string {
	return fmt.Sprintf(format, args...)
}
