package main

import (
	"fmt"
	"strings"

	"repro/internal/asic"
	"repro/internal/fabric"
	"repro/internal/fabric/scenario"
	"repro/internal/faults"
	"repro/internal/netsim"
	"repro/internal/topo"
	"repro/internal/trace"
)

// convergeScenario: eight churn iterations retarget the leaf routes and
// reconverge with a delayed apply, while leaf0 crash-restarts three
// times — so some applies race a reboot, detect the epoch bump and
// roll forward under the retry budget.
const convergeScenario = `
name: converge-under-churn
phases:
  - name: provision
    kind: provision
    budget: 6
    backoff: 4ms
  - name: storm
    kind: faults
    needs: [provision]
    events:
      - at: 2.5ms
        kind: switch-reboot
        target: leaf0
        bootdelay: 1ms
      - at: 12.5ms
        kind: switch-reboot
        target: leaf0
        bootdelay: 1ms
      - at: 20.5ms
        kind: switch-reboot
        target: leaf0
        bootdelay: 1ms
  - name: churn
    kind: churn
    needs: [storm]
    hooks: [shift]
    repeat: 8
    budget: 6
    backoff: 4ms
    applydelay: 2ms
  - name: check
    kind: asserts
    needs: [churn]
    hooks: [verified]
`

// runConverge measures the fabric controller's convergence behavior
// under route churn racing switch crash-restarts: per-iteration attempt
// counts, ops applied, and how many rounds hit an epoch race or a dark
// (mid-boot) device before rolling forward.
func runConverge(out *output) error {
	sim := netsim.New(1)
	edge := topo.Mbps(20, 10*netsim.Microsecond)
	backbone := topo.Mbps(10, 10*netsim.Microsecond)
	_, _, leafSW, spineSW := topo.LeafSpine(sim, 2, 2, 2, edge, backbone,
		asic.Config{Ports: 8})
	ctl := fabric.New(sim)
	for i, sw := range leafSW {
		ctl.Register(fmt.Sprintf("leaf%d", i), sw)
	}
	for j, sw := range spineSW {
		ctl.Register(fmt.Sprintf("spine%d", j), sw)
	}
	inj := faults.NewInjector(sim, nil)
	inj.RegisterSwitch("leaf0", leafSW[0])

	// Routes on every device plus a seeded service on leaf0, so a
	// reboot wipes state the controller must re-apply (TCAM survives a
	// crash; SRAM does not).
	spec := fabric.Spec{Devices: []fabric.DeviceSpec{
		{
			Device:   "leaf0",
			Services: []fabric.Service{{Name: "rcp", Words: 8, Seed: []uint32{1250000}}},
			Routes: []fabric.Route{
				{DstIP: 0x0a000001, Priority: 100, OutPort: 2},
				{DstIP: 0x0a000002, Priority: 100, OutPort: 3},
			},
		},
		{Device: "leaf1", Routes: []fabric.Route{{DstIP: 0x0a000001, Priority: 10, OutPort: 0}}},
		{Device: "spine0", Routes: []fabric.Route{{DstIP: 0x0a000001, Priority: 10, OutPort: 0}}},
		{Device: "spine1", Routes: []fabric.Route{{DstIP: 0x0a000002, Priority: 10, OutPort: 0}}},
	}}

	env := &scenario.Env{
		Sim:        sim,
		Controller: ctl,
		Injector:   inj,
		Spec:       spec,
		Seed:       1,
		Churns: map[string]scenario.Hook{
			// Retarget every leaf0 route one port on: real churn the
			// controller must diff and apply each iteration.
			"shift": func(e *scenario.Env) error {
				for di, d := range e.Spec.Devices {
					if d.Device != "leaf0" {
						continue
					}
					for ri := range d.Routes {
						e.Spec.Devices[di].Routes[ri].OutPort =
							1 + e.Spec.Devices[di].Routes[ri].OutPort%7
					}
				}
				return nil
			},
		},
		Asserts: map[string]scenario.Hook{
			"verified": func(e *scenario.Env) error {
				if errs := e.Controller.Verify(e.Spec); len(errs) > 0 {
					return fmt.Errorf("%d devices off spec: %v", len(errs), errs)
				}
				return nil
			},
		},
	}
	sc, err := scenario.Parse(convergeScenario, nil)
	if err != nil {
		return err
	}
	res := scenario.Run(env, sc)

	out.printf("fabric convergence under churn: 8 route-churn iterations racing 3 leaf0 crash-restarts (scenario %q)\n\n", res.Name)
	tbl := trace.NewTable("converge", "attempts", "ops", "races", "converged")
	type row struct {
		phase             string
		iter              int
		c                 fabric.ConvergeResult
		races, darkRounds int
	}
	var rows []row
	for _, p := range res.Phases {
		for i, c := range p.Converges {
			r := row{phase: p.Name, iter: i, c: c}
			for _, rd := range c.Rounds {
				for _, de := range rd.Errors {
					switch de.Kind {
					case fabric.ErrEpochRaced:
						r.races++
					case fabric.ErrDeviceDark:
						r.darkRounds++
					}
				}
			}
			rows = append(rows, r)
			tbl.Row(fmt.Sprintf("%s[%d]", p.Name, i), c.Attempts, c.OpsApplied,
				fmt.Sprintf("%d raced / %d dark", r.races, r.darkRounds), c.Converged)
		}
	}
	out.printf("%s\n", tbl.String())

	totalRaces, totalDark := 0, 0
	for _, r := range rows {
		totalRaces += r.races
		totalDark += r.darkRounds
	}
	out.printf("epoch races detected: %d; applies against a dark (mid-boot) device: %d — every one rolled forward by re-diffing\n",
		totalRaces, totalDark)
	if !res.OK() {
		return fmt.Errorf("scenario not OK: aborted=%q failures=%v",
			res.Aborted, res.Failures())
	}
	if totalRaces+totalDark == 0 {
		return fmt.Errorf("no converge ever raced a reboot; the churn timeline no longer exercises the epoch guard")
	}

	if f, err := out.csvFile("converge.csv"); err != nil {
		return err
	} else if f != nil {
		defer f.Close()
		c := trace.NewCSV(f, "converge", "attempts", "ops_applied", "epoch_races", "dark_applies", "converged")
		for _, r := range rows {
			c.Row(fmt.Sprintf("%s_%d", strings.ReplaceAll(r.phase, " ", "_"), r.iter),
				r.c.Attempts, r.c.OpsApplied, r.races, r.darkRounds, r.c.Converged)
		}
		return c.Err()
	}
	return nil
}
