package main

import (
	"fmt"

	"repro/internal/chaos"
	"repro/internal/trace"
)

// runReboot runs the composed chaos soak: switch crash-restarts under a
// live RCP* flow, a shared accounting tally, bursty fabric loss, a
// silent blackhole and a TCPU admission gate, all on one seeded plan.
// It reports how every end-host mechanism rode out the crashes and that
// the dataplane telemetry reconciles exactly with the switch counters.
func runReboot(out *output) error {
	cfg := chaos.Default(1)
	res := chaos.Run(cfg)

	out.printf("switch crash-restart soak on a 3x2 leaf-spine (%v, seed %d)\n\n",
		cfg.Duration, cfg.Seed)
	out.printf("fault plan: %d spine-0 reboots (boot delay %v), bursty loss %v-%v, blackhole %v-%v, TCPU gate %.0f TPPs/s burst %d\n\n",
		len(cfg.RebootAt), cfg.BootDelay, cfg.LossFrom, cfg.LossTo,
		cfg.HoleFrom, cfg.HoleTo, cfg.TPPRate, cfg.TPPBurst)

	tbl := trace.NewTable("mechanism", "outcome")
	tbl.Row("queue conservation (leaked pkts)", res.Leaked)
	tbl.Row("reboots / drops while dark", joinCounts(res.Reboots, res.RebootDrops))
	tbl.Row("RCP* epoch bumps detected", res.EpochBumps)
	tbl.Row("RCP* rate-register re-seeds", res.Reinits)
	tbl.Row("accounting polls / discontinuities", joinCounts(uint64(res.Polls), res.Discontinuities))
	tbl.Row("accounting negative deltas", res.NegativeDeltas)
	tbl.Row("TPPs throttled at leaf 2", res.Throttled)
	tbl.Row("throttled echoes returned", res.ThrottledEchoes)
	out.printf("%s\n", tbl.String())

	out.printf("recovery: rate 30 control intervals after each reboot (fair share 1.25e6 B/s):\n")
	for i, r := range res.RateAfterReboot {
		out.printf("  reboot %d at %v: %.0f B/s\n", i, cfg.RebootAt[i], r)
	}
	out.printf("telemetry reconciliation: reboot spans=%d metric=%d; drop spans=%d metric=%d; throttle spans=%d metric=%d (spans dropped: %d)\n",
		res.RebootSpans, res.RebootsMetric, res.RebootDropSpans, res.RebootDropMetric,
		res.ThrottleSpans, res.ThrottleMetric, res.SpansDropped)

	// The soak is an experiment AND an invariant check: a broken
	// robustness contract must fail the run (non-zero exit), not just
	// print odd numbers.
	switch {
	case !res.Scenario.OK():
		return fmt.Errorf("scenario not OK: aborted=%q failures=%v",
			res.Scenario.Aborted, res.Scenario.Failures())
	case res.Leaked != 0:
		return fmt.Errorf("queue conservation violated: %d packets unaccounted", res.Leaked)
	case res.Reboots != uint64(len(cfg.RebootAt)):
		return fmt.Errorf("reboots = %d, want %d", res.Reboots, len(cfg.RebootAt))
	case res.EpochBumps < uint64(len(cfg.RebootAt)):
		return fmt.Errorf("RCP* detected %d epoch bumps across %d reboots",
			res.EpochBumps, len(cfg.RebootAt))
	case res.NegativeDeltas != 0:
		return fmt.Errorf("accounting reported %d negative deltas", res.NegativeDeltas)
	case res.Discontinuities == 0:
		return fmt.Errorf("counter wipes never flagged as discontinuities")
	case res.SpansDropped != 0:
		return fmt.Errorf("tracer dropped %d spans", res.SpansDropped)
	}

	if f, err := out.csvFile("reboot.csv"); err != nil {
		return err
	} else if f != nil {
		defer f.Close()
		c := trace.NewCSV(f, "metric", "value")
		c.Row("leaked_pkts", res.Leaked)
		c.Row("reboots", res.Reboots)
		c.Row("reboot_drops", res.RebootDrops)
		c.Row("epoch_bumps", res.EpochBumps)
		c.Row("rate_reseeds", res.Reinits)
		c.Row("polls", res.Polls)
		c.Row("discontinuities", res.Discontinuities)
		c.Row("negative_deltas", res.NegativeDeltas)
		c.Row("tpps_throttled", res.Throttled)
		c.Row("throttled_echoes", res.ThrottledEchoes)
		for i, r := range res.RateAfterReboot {
			c.Row(fmt.Sprintf("rate_after_reboot_%d", i), int64(r))
		}
		return c.Err()
	}
	return nil
}

func joinCounts(a, b uint64) string { return fmt.Sprintf("%d / %d", a, b) }
