package main

import (
	"math"

	"repro/internal/asic"
	"repro/internal/core"
	"repro/internal/microburst"
	"repro/internal/ndb"
	"repro/internal/netsim"
	"repro/internal/topo"
	"repro/internal/trace"
	"repro/internal/wireless"
)

// runMicroburst reproduces the §2.1 comparison: per-packet TPP
// telemetry vs SNMP-style polling against an 8-to-1 incast.
func runMicroburst(out *output) error {
	cfg := microburst.DefaultConfig()
	cfg.Metrics, cfg.Trace = out.metrics, out.tracer
	res := microburst.Run(cfg)

	out.printf("§2.1 micro-burst detection: 8-to-1 incast, %d bursts of %d bytes every %v\n\n",
		res.BurstsGenerated, res.Config.BurstBytes*res.Config.Senders, res.Config.Period)
	tbl := trace.NewTable("monitor", "samples", "bursts detected", "detection rate", "peak queue (B)")
	tbl.Row("TPP per-packet telemetry", res.TelemetrySamples,
		len(res.Episodes), sprintf("%.0f%%", 100*res.DetectionRateTPP()), res.TelemetryPeak)
	tbl.Row(sprintf("polling every %v", res.Config.PollEvery), res.PollerPolls,
		res.PollerDetections, sprintf("%.0f%%", 100*res.DetectionRatePoller()), res.PollerPeak)
	out.printf("%s\nmean detected burst duration: %.0fus (invisible at 1s polling)\n\n",
		tbl.String(), res.MeanEpisodeUs)

	// Sampling-density ablation: how detection decays as telemetry
	// thins out from per-packet toward the polling regime.
	sweepCfg := res.Config
	sweepCfg.Bursts = 20
	dens := trace.NewTable("instrument every", "samples", "detection rate")
	for _, p := range microburst.SweepDensity(sweepCfg, []int{1, 4, 16, 64, 256, 1024}) {
		dens.Row(sprintf("1/%d packets", p.SampleEvery), p.Samples,
			sprintf("%.0f%%", 100*p.DetectionRate))
	}
	out.printf("sampling density (20 bursts):\n%s", dens.String())

	if f, err := out.csvFile("microburst.csv"); err != nil {
		return err
	} else if f != nil {
		defer f.Close()
		c := trace.NewCSV(f, "episode", "start_s", "duration_us", "peak_bytes")
		for i, e := range res.Episodes {
			c.Row(i, netsim.Time(e.Start).Seconds(),
				float64(e.Duration())/float64(netsim.Microsecond), e.Peak)
		}
		return c.Err()
	}
	return nil
}

// runNdb reproduces the §2.3 debugger: TPP traces verify forwarding
// against controller intent and catch an injected stale rule, at zero
// extra packets versus the copy-based baseline.
func runNdb(out *output) error {
	cfg := ndb.DefaultConfig()
	cfg.Metrics, cfg.Trace = out.metrics, out.tracer
	res := ndb.Run(cfg)

	out.printf("§2.3 forwarding-plane debugger on a 2x2 leaf-spine\n\n")
	tbl := trace.NewTable("phase", "traces", "violations")
	tbl.Row("conforming fabric", res.CleanTraces, res.CleanViolations)
	tbl.Row("after injected stale rule", res.BadTraces, len(res.BadViolations))
	out.printf("%s\nviolation kinds: ", tbl.String())
	for kind, count := range res.ViolationKinds {
		out.printf("%s=%d ", kind, count)
	}
	out.printf("\n\noverhead comparison over the same traffic:\n")
	cmp := trace.NewTable("mechanism", "extra packets", "extra bytes")
	cmp.Row("TPP traces (in-band)", 0, res.TPPInBandBytes)
	cmp.Row("ndb packet copies", res.BaselineCopies, res.BaselineCopyBytes)
	out.printf("%s\njourneys agree with the packet-copy baseline: %v\n",
		cmp.String(), res.JourneysAgree)

	if f, err := out.csvFile("ndb.csv"); err != nil {
		return err
	} else if f != nil {
		defer f.Close()
		c := trace.NewCSV(f, "metric", "value")
		c.Row("clean_traces", res.CleanTraces)
		c.Row("bad_traces", res.BadTraces)
		c.Row("tpp_inband_bytes", res.TPPInBandBytes)
		c.Row("baseline_copies", res.BaselineCopies)
		c.Row("baseline_copy_bytes", res.BaselineCopyBytes)
		return c.Err()
	}
	return nil
}

// runWireless reproduces the §2 wireless extension: per-packet SNR
// annotation tracks a fast-fading channel that coarse polling cannot.
func runWireless(out *output) error {
	sim := netsim.New(7)
	n := topo.NewNetwork(sim)
	sw := n.AddSwitch(asic.Config{Ports: 4})
	h1, h2 := n.AddHost(), n.AddHost()
	n.LinkHost(h1, sw, topo.Mbps(100, 0))
	p2 := n.LinkHost(h2, sw, topo.Mbps(100, 0))
	n.PrimeL2(netsim.Millisecond)
	ap := wireless.NewAP(sim, sw, p2, wireless.DefaultAPConfig())

	var perPacketErr, polledErr, count float64
	polled := ap.SNRdB()
	sim.Every(sim.Now()+100*netsim.Millisecond, 100*netsim.Millisecond, func() { polled = ap.SNRdB() })
	h2.HandleDefault(func(pkt *core.Packet) {
		if pkt.TPP == nil {
			return
		}
		truth := ap.SNRdB()
		sample := wireless.SNRFromCentiDB(pkt.TPP.Word(0))
		perPacketErr += math.Abs(sample - truth)
		polledErr += math.Abs(polled - truth)
		count++
	})
	sim.Every(sim.Now()+netsim.Millisecond, netsim.Millisecond, func() {
		pkt := h1.NewPacket(h2.MAC, h2.IP, 1, 2, 100)
		pkt.TPP = wireless.SNRProgram(2)
		pkt.Eth.Type = core.EtherTypeTPP
		h1.Send(pkt)
	})
	sim.RunUntil(sim.Now() + 10*netsim.Second)

	perPacketErr /= count
	polledErr /= count
	out.printf("wireless SNR annotation (OU fading channel, mean 25 dB)\n\n")
	tbl := trace.NewTable("monitor", "mean abs error (dB)")
	tbl.Row("TPP per-packet annotation", perPacketErr)
	tbl.Row("100ms polling", polledErr)
	out.printf("%s\nper-packet annotation is %.1fx more accurate on this channel\n",
		tbl.String(), polledErr/perPacketErr)

	if f, err := out.csvFile("wireless.csv"); err != nil {
		return err
	} else if f != nil {
		defer f.Close()
		c := trace.NewCSV(f, "monitor", "mean_abs_error_db")
		c.Row("tpp", perPacketErr)
		c.Row("polling", polledErr)
		return c.Err()
	}
	return nil
}

// runBreakdown prints the §2.1 per-hop queueing-latency breakdown: a
// TPP samples queue and capacity at every hop, and the end-host
// localizes which hop the latency came from.
func runBreakdown(out *output) error {
	res := microburst.RunBreakdown(microburst.DefaultBreakdownConfig())
	out.printf("§2.1 per-hop queueing-latency breakdown (3-switch path, cross bursts at switch 2)\n\n")
	tbl := trace.NewTable("hop", "mean (us)", "p99 (us)", "max (us)")
	for _, h := range res.Hops {
		tbl.Row(h.Hop+1, h.MeanUs, h.P99Us, h.MaxUs)
	}
	out.printf("%s\n%d per-packet samples; hop %d dominates — the end-host sees exactly where the latency lives\n",
		tbl.String(), res.Samples, res.DominantHop+1)

	if f, err := out.csvFile("breakdown.csv"); err != nil {
		return err
	} else if f != nil {
		defer f.Close()
		c := trace.NewCSV(f, "hop", "mean_us", "p99_us", "max_us")
		for _, h := range res.Hops {
			c.Row(h.Hop+1, h.MeanUs, h.P99Us, h.MaxUs)
		}
		return c.Err()
	}
	return nil
}
