package main

import (
	"fmt"

	"repro/internal/asic"
	"repro/internal/core"
	"repro/internal/endhost"
	"repro/internal/mem"
	"repro/internal/netsim"
	"repro/internal/rcp"
	"repro/internal/tcpu"
	"repro/internal/topo"
	"repro/internal/trace"
)

// runFig1 reproduces the Figure 1 walk: a PUSH [Queue:QueueSize] TPP
// traverses three switches behind a burst, its stack pointer advancing
// 0x0 -> 0x4 -> 0x8 -> 0xc while each hop deposits a queue snapshot.
func runFig1(out *output) error {
	sim := netsim.New(1)
	edge := topo.Mbps(80, 10*netsim.Microsecond)
	backbone := topo.Mbps(8, 10*netsim.Microsecond)
	n, src, dst, _ := topo.Line(sim, 3, edge, backbone, asic.Config{})
	n.PrimeL2(5 * netsim.Millisecond)

	// Cross traffic: a burst queued ahead of the probe at switch 1.
	for i := 0; i < 20; i++ {
		src.Send(src.NewPacket(dst.MAC, dst.IP, 5000, 5001, 986))
	}

	probe := core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpPUSH, A: uint16(mem.QueueBase + mem.QueueBytes)},
	}, 3)
	prober := endhost.NewProber(src)
	var echoed *core.TPP
	prober.Probe(dst.MAC, dst.IP, probe, func(e *core.TPP) { echoed = e })
	sim.RunUntil(sim.Now() + 200*netsim.Millisecond)
	if echoed == nil {
		return fmt.Errorf("probe echo lost")
	}

	out.printf("Figure 1: PUSH [Queue:QueueSize] walking a 3-switch path behind a 20-packet burst\n\n")
	tbl := trace.NewTable("hop", "SP before", "SP after", "queue bytes recorded")
	for hop := 0; hop < 3; hop++ {
		tbl.Row(hop+1, sprintf("%#x", 4*hop), sprintf("%#x", 4*(hop+1)), echoed.Word(hop))
	}
	out.printf("%s\nfinal SP = %#x (three 4-byte snapshots, as in the paper's figure)\n",
		tbl.String(), echoed.Ptr)

	if f, err := out.csvFile("fig1.csv"); err != nil {
		return err
	} else if f != nil {
		defer f.Close()
		c := trace.NewCSV(f, "hop", "queue_bytes")
		for hop := 0; hop < 3; hop++ {
			c.Row(hop+1, echoed.Word(hop))
		}
		return c.Err()
	}
	return nil
}

// runFig2 reproduces Figure 2: R(t)/C of the 10 Mb/s bottleneck under
// RCP* and under the native-RCP baseline, flows joining at 0/10/20 s.
func runFig2(out *output) error {
	out.printf("Figure 2: R(t)/C on a 10 Mb/s bottleneck, flows start at t=0,10,20s (α=0.5, β=1)\n\n")
	results := map[rcp.Variant]rcp.Fig2Result{}
	for _, v := range []rcp.Variant{rcp.VariantStar, rcp.VariantBaseline} {
		cfg := rcp.DefaultFig2Config(v)
		cfg.Metrics = out.metrics
		res := rcp.RunFigure2(cfg)
		results[v] = res
		if f, err := out.csvFile(fmt.Sprintf("fig2_%s.csv", v)); err != nil {
			return err
		} else if f != nil {
			c := trace.NewCSV(f, "t_seconds", "r_over_c", "flow1_bps", "flow2_bps", "flow3_bps")
			for _, s := range res.Samples {
				c.Row(s.T, s.ROverC, s.Flows[0]*8, s.Flows[1]*8, s.Flows[2]*8)
			}
			f.Close()
			if c.Err() != nil {
				return c.Err()
			}
		}
	}

	tbl := trace.NewTable("window", "flows", "ideal R/C",
		"RCP* mean R/C", "RCP mean R/C", "RCP* settle (s)", "RCP settle (s)")
	windows := []struct {
		lo, hi float64
		flows  int
	}{{0, 10, 1}, {10, 20, 2}, {20, 30, 3}}
	for _, w := range windows {
		ideal := 1.0 / float64(w.flows)
		star := results[rcp.VariantStar]
		base := results[rcp.VariantBaseline]
		tbl.Row(sprintf("%g-%gs", w.lo, w.hi), w.flows, ideal,
			star.MeanROverC(w.lo+5, w.hi),
			base.MeanROverC(w.lo+5, w.hi),
			star.ConvergenceTime(w.lo, w.hi, ideal, 0.2*ideal),
			base.ConvergenceTime(w.lo, w.hi, ideal, 0.2*ideal))
	}
	out.printf("%s\n(series in fig2_rcpstar.csv / fig2_baseline.csv when -out is set)\n", tbl.String())
	return nil
}

// runFig3 characterizes the Figure 3 pipeline: the stage ordering, the
// modeled latency of each stage for one packet, and the sustained
// forwarding rate of one switch under saturation.
func runFig3(out *output) error {
	out.printf("Figure 3: dataplane pipeline stages (simulated model)\n\n")

	tbl := trace.NewTable("stage", "model", "latency contribution")
	tbl.Row("RX PHY + parser", "netsim.Channel delivery", "serialization + propagation")
	tbl.Row("L2/L3/TCAM lookup", "asic.Switch.forward", "500ns fixed pipeline latency")
	tbl.Row("TCPU", "tcpu.Exec", "k+3 cycles, overlapped with pipeline")
	tbl.Row("memory manager", "asic.Queue", "0 (enqueue is combinational)")
	tbl.Row("scheduler + TX", "asic.Port.kick", "queueing + serialization")
	out.printf("%s\n", tbl.String())

	// Measured: single-switch store-and-forward latency and saturated
	// throughput.
	sim := netsim.New(1)
	n := topo.NewNetwork(sim)
	sw := n.AddSwitch(asic.Config{Ports: 4})
	h1, h2 := n.AddHost(), n.AddHost()
	h1.NIC.SetCapacity(20_000)
	n.LinkHost(h1, sw, topo.Mbps(1000, 0))
	n.LinkHost(h2, sw, topo.Mbps(1000, 0))
	n.PrimeL2(netsim.Millisecond)

	var lastArrival netsim.Time
	var delivered int
	h2.HandleDefault(func(p *core.Packet) { delivered++; lastArrival = sim.Now() })
	start := sim.Now()
	const pkts = 10_000
	for i := 0; i < pkts; i++ {
		h1.Send(h1.NewPacket(h2.MAC, h2.IP, 1, 2, 58)) // 100-byte frames
	}
	sim.RunUntil(sim.Now() + 10*netsim.Second)

	elapsed := (lastArrival - start).Seconds()
	out.printf("measured: %d 100-byte frames through one switch in %.4fs = %.2f Mpps at 1 Gb/s line rate\n",
		delivered, elapsed, float64(delivered)/elapsed/1e6)
	out.printf("per-packet forwarding latency: pipeline 500ns + 0.8us serialization at 1 Gb/s\n")

	if f, err := out.csvFile("fig3.csv"); err != nil {
		return err
	} else if f != nil {
		defer f.Close()
		c := trace.NewCSV(f, "metric", "value")
		c.Row("frames", delivered)
		c.Row("elapsed_s", elapsed)
		c.Row("mpps", float64(delivered)/elapsed/1e6)
		return c.Err()
	}
	return nil
}

// runFig4 reproduces the Figure 4 / §3.3 wire-format overheads.
func runFig4(out *output) error {
	out.printf("Figure 4 / §3.3: TPP wire overheads (12B header + 4B/instruction + packet memory)\n\n")
	tbl := trace.NewTable("instructions", "instr bytes", "hops", "per-hop mem bytes", "TPP bytes total")
	var f *trace.CSV
	if file, err := out.csvFile("fig4.csv"); err != nil {
		return err
	} else if file != nil {
		defer file.Close()
		f = trace.NewCSV(file, "instructions", "instr_bytes", "hops", "per_hop_bytes", "total_bytes")
	}
	for _, ins := range []int{1, 2, 3, 4, 5} {
		for _, hops := range []int{1, 5, 7} {
			prog := make([]core.Instruction, ins)
			for i := range prog {
				prog[i] = core.Instruction{Op: core.OpPUSH, A: uint16(mem.QueueBase)}
			}
			tpp := core.NewTPP(core.AddrStack, prog, ins*hops)
			wire := tpp.AppendTo(nil)
			if len(wire) != tpp.WireLen() {
				return fmt.Errorf("wire length mismatch")
			}
			perHop := ins * 4
			tbl.Row(ins, ins*core.InstructionLen, hops, perHop, tpp.WireLen())
			if f != nil {
				f.Row(ins, ins*core.InstructionLen, hops, perHop, tpp.WireLen())
			}
		}
	}
	out.printf("%s\npaper check: 5 instructions = 20 bytes of instructions; "+
		"5 instrs x 2 words/hop would be 40 bytes/hop of packet memory\n", tbl.String())
	return nil
}

// runFig5 reproduces the Figure 5 cycle model: k instructions retire in
// k+3 cycles, far inside the 300-cycle small-packet budget of §3.3.
func runFig5(out *output) error {
	out.printf("Figure 5 / §3.3: TCPU pipeline occupancy (4-cycle latency, 1 instr/cycle)\n\n")
	sim := netsim.New(1)
	n := topo.NewNetwork(sim)
	sw := n.AddSwitch(asic.Config{Ports: 2, TCPU: tcpu.Config{MaxInstructions: 16}})
	h := n.AddHost()
	n.LinkHost(h, sw, topo.Mbps(100, 0))
	sim.RunUntil(netsim.Millisecond)

	tbl := trace.NewTable("instructions", "cstores", "cycles", "ns @1GHz", "budget used")
	var f *trace.CSV
	if file, err := out.csvFile("fig5.csv"); err != nil {
		return err
	} else if file != nil {
		defer file.Close()
		f = trace.NewCSV(file, "instructions", "cstores", "cycles", "budget_fraction")
	}
	for k := 1; k <= 5; k++ {
		for _, withCStore := range []bool{false, true} {
			ins := make([]core.Instruction, k)
			for i := range ins {
				ins[i] = core.Instruction{Op: core.OpPUSH, A: uint16(mem.QueueBase)}
			}
			cstores := 0
			if withCStore {
				ins[0] = core.Instruction{Op: core.OpCSTORE, A: uint16(mem.SRAMBase), B: 0}
				cstores = 1
			}
			tpp := core.NewTPP(core.AddrStack, ins, k+3)
			if withCStore {
				tpp.Ptr = 12 // stack above the CSTORE operand words
			}
			view := sw.ViewForTesting(nil, 0)
			res := (tcpu.Config{MaxInstructions: 16}).Exec(tpp, view)
			if res.Fault != nil {
				return res.Fault
			}
			frac := float64(res.Cycles) / float64(tcpu.BudgetCycles)
			tbl.Row(k, cstores, res.Cycles, res.Cycles, sprintf("%.1f%%", 100*frac))
			if f != nil {
				f.Row(k, cstores, res.Cycles, frac)
			}
		}
	}
	out.printf("%s\nevery 5-instruction program fits in <3%% of the 300ns cut-through budget\n\n", tbl.String())

	// §1's line-rate arithmetic: "A 64-port 10GbE switch has to
	// process about a billion 64-byte-packets/second".
	lr := trace.NewTable("switch", "pkts/sec", "TCPU pipelines @1GHz", "cycles/pkt/pipeline")
	for _, cfgRow := range []struct {
		name  string
		ports int
		gbps  float64
	}{{"48x1GbE", 48, 1}, {"64x10GbE", 64, 10}, {"32x40GbE", 32, 40}} {
		c := tcpu.CheckLineRate(cfgRow.ports, cfgRow.gbps, 64, 5, 1.0)
		lr.Row(cfgRow.name, sprintf("%.2g", c.PacketsPerSecond),
			c.TCPUsNeeded, sprintf("%.1f", c.PerPacketBudgetCycles))
	}
	out.printf("line-rate feasibility for 5-instruction TPPs on minimum-size packets:\n%s", lr.String())
	return nil
}
