package main

import (
	"repro/internal/ndb"
	"repro/internal/trace"
)

// runBlackhole reproduces the ndb-style blackhole hunt: a leaf-spine
// fabric link silently dies, end-host TPP hop traces localize it by
// set subtraction, and probe retry/recovery carries the sweep through
// the outage.
func runBlackhole(out *output) error {
	cfg := ndb.DefaultBlackholeConfig()
	cfg.Trace = out.tracer
	res := ndb.RunBlackhole(cfg)

	out.printf("ndb blackhole localization on a %dx%d leaf-spine\n\n",
		cfg.Leaves, cfg.Spines)
	out.printf("injected fault: %s down from %v to %v\n\n",
		ndb.LinkID{Leaf: cfg.FailLeaf, Spine: cfg.FailSpine},
		cfg.FailAt, cfg.RecoverAt)

	tbl := trace.NewTable("round", "walks answered")
	walks := cfg.Spines * (cfg.Leaves - 1) * cfg.Spines
	tbl.Row("healthy baseline", res.BaselinePaths)
	// Every dead walk is reaped exactly once, so the fault round
	// answered walks - timeouts.
	tbl.Row("fault active", walks-int(res.TimedOut))
	tbl.Row("after recovery", res.RecoveredPaths)
	out.printf("%s\n", tbl.String())

	out.printf("evidence: %d candidate links from dead walks, %d proven up by traces\n",
		len(res.Candidates), len(res.ProvenUp))
	out.printf("suspects: %v  localized: %v\n", res.Suspects, res.Localized)
	out.printf("probes: sent=%d echoed=%d timed-out=%d retransmitted=%d\n",
		res.ProbesSent, res.Echoed, res.TimedOut, res.Retransmits)

	if f, err := out.csvFile("blackhole.csv"); err != nil {
		return err
	} else if f != nil {
		defer f.Close()
		c := trace.NewCSV(f, "metric", "value")
		c.Row("baseline_walks", res.BaselinePaths)
		c.Row("recovered_walks", res.RecoveredPaths)
		c.Row("candidates", len(res.Candidates))
		c.Row("proven_up", len(res.ProvenUp))
		c.Row("suspects", len(res.Suspects))
		c.Row("localized", res.Localized)
		c.Row("probes_sent", res.ProbesSent)
		c.Row("probes_echoed", res.Echoed)
		c.Row("probes_timed_out", res.TimedOut)
		c.Row("retransmits", res.Retransmits)
		return c.Err()
	}
	return nil
}
