// Command experiments regenerates every table and figure of the TPP
// paper on the simulated substrate.  Each subcommand prints the rows or
// series the paper reports and, when -out is set, writes CSV files for
// plotting.
//
// Usage:
//
//	experiments [-out DIR] [-metrics FILE] [-trace FILE] [-cpuprofile FILE] [-memprofile FILE] <experiment>
//
// Experiments: table1 table2 fig1 fig2 fig3 fig4 fig5 microburst ndb
// blackhole wireless rtthist spinbit all
//
// -cpuprofile and -memprofile write runtime/pprof profiles on clean
// exit (inspect with `go tool pprof`).
//
// -metrics and -trace enable the telemetry subsystem (internal/obs) for
// the experiments that support it (microburst, ndb, fig2): the final
// metrics snapshot and the packet-lifecycle span log are written as
// JSONL to the given files ("-" for stdout).
package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"

	"repro/internal/obs"
)

// experiment is one reproducible artifact.
type experiment struct {
	name  string
	about string
	run   func(out *output) error
}

var experiments = []experiment{
	{"table1", "instruction set semantics and TCPU cost", runTable1},
	{"table2", "statistics namespaces via the unified memory map", runTable2},
	{"fig1", "queue-size query walking a 3-switch path", runFig1},
	{"fig2", "RCP* vs native RCP convergence on a 10 Mb/s bottleneck", runFig2},
	{"fig3", "dataplane pipeline stages and forwarding latency", runFig3},
	{"fig4", "TPP wire format overheads (§3.3)", runFig4},
	{"fig5", "TCPU pipeline cycle model and the 300-cycle budget", runFig5},
	{"microburst", "§2.1 micro-burst detection vs coarse polling", runMicroburst},
	{"ndb", "§2.3 forwarding-plane debugger vs packet-copy baseline", runNdb},
	{"blackhole", "ndb blackhole localization under fault injection", runBlackhole},
	{"wireless", "per-packet SNR sampling vs polling (§2 extension)", runWireless},
	{"aimd", "extension: RCP* vs TCP-style AIMD head-to-head", runAIMD},
	{"breakdown", "§2.1 per-hop queueing-latency breakdown", runBreakdown},
	{"accounting", "§2.2 consistency: CSTORE vs racy read-modify-write", runAccounting},
	{"fct", "extension: flow completion time, RCP* vs AIMD", runFCT},
	{"reboot", "robustness: switch crash-restart chaos soak", runReboot},
	{"hostile", "robustness: hostile-tenant isolation soak", runHostile},
	{"converge", "robustness: fabric converge-under-churn vs crash-restarts", runConverge},
	{"reroute", "robustness: reflex fast-reroute vs prober-driven repair", runReroute},
	{"rtthist", "in-band dataplane RTT histogram vs host ground truth", runRTTHist},
	{"spinbit", "passive spin-bit RTT observer at a mid-path switch", runSpinBit},
}

func main() {
	outDir, metricsPath, tracePath := "", "", ""
	cpuProfile, memProfile := "", ""
	args := os.Args[1:]
	for len(args) >= 2 {
		switch args[0] {
		case "-out":
			outDir = args[1]
		case "-metrics":
			metricsPath = args[1]
		case "-trace":
			tracePath = args[1]
		case "-cpuprofile":
			cpuProfile = args[1]
		case "-memprofile":
			memProfile = args[1]
		default:
			usage()
			os.Exit(2)
		}
		args = args[2:]
	}
	if len(args) != 1 {
		usage()
		os.Exit(2)
	}
	name := args[0]

	if cpuProfile != "" {
		f, err := os.Create(cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	defer writeMemProfile(memProfile)

	out := &output{dir: outDir, w: os.Stdout}
	if metricsPath != "" {
		out.metrics = obs.NewRegistry()
	}
	if tracePath != "" {
		out.tracer = obs.NewTracer(0)
	}
	runOne := func(e experiment) {
		if err := e.run(out); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.name, err)
			os.Exit(1)
		}
	}
	found := false
	if name == "all" {
		for _, e := range experiments {
			fmt.Printf("== %s: %s ==\n", e.name, e.about)
			runOne(e)
			fmt.Println()
		}
		found = true
	} else {
		for _, e := range experiments {
			if e.name == name {
				runOne(e)
				found = true
				break
			}
		}
	}
	if !found {
		usage()
		os.Exit(2)
	}
	if err := dumpTelemetry(out, metricsPath, tracePath); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}

// dumpTelemetry writes the accumulated metrics snapshot and span log as
// JSONL to the -metrics/-trace destinations.
func dumpTelemetry(out *output, metricsPath, tracePath string) error {
	write := func(path string, emit func(io.Writer) error) error {
		if path == "-" {
			return emit(os.Stdout)
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := emit(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if out.metrics != nil {
		snap := out.metrics.Snapshot(0)
		if err := write(metricsPath, snap.WriteJSONL); err != nil {
			return err
		}
	}
	if out.tracer != nil {
		if err := write(tracePath, out.tracer.WriteJSONL); err != nil {
			return err
		}
	}
	return nil
}

// writeMemProfile dumps a GC-settled heap profile on clean exit.
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: experiments [-out DIR] [-metrics FILE] [-trace FILE] [-cpuprofile FILE] [-memprofile FILE] <experiment>")
	names := make([]string, 0, len(experiments)+1)
	for _, e := range experiments {
		names = append(names, fmt.Sprintf("  %-11s %s", e.name, e.about))
	}
	names = append(names, "  all         run everything")
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintln(os.Stderr, n)
	}
}

// output bundles the terminal stream, the optional CSV directory, and
// the optional telemetry sinks experiments thread into their runs.
type output struct {
	dir     string
	w       io.Writer
	metrics *obs.Registry
	tracer  *obs.Tracer
}

func (o *output) printf(format string, args ...any) {
	fmt.Fprintf(o.w, format, args...)
}

// csvFile opens DIR/name for writing, or returns nil when -out is
// unset (callers skip CSV emission then).
func (o *output) csvFile(name string) (*os.File, error) {
	if o.dir == "" {
		return nil, nil
	}
	if err := os.MkdirAll(o.dir, 0o755); err != nil {
		return nil, err
	}
	return os.Create(filepath.Join(o.dir, name))
}
