// Command experiments regenerates every table and figure of the TPP
// paper on the simulated substrate.  Each subcommand prints the rows or
// series the paper reports and, when -out is set, writes CSV files for
// plotting.
//
// Usage:
//
//	experiments [-out DIR] <experiment>
//
// Experiments: table1 table2 fig1 fig2 fig3 fig4 fig5 microburst ndb
// wireless all
package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// experiment is one reproducible artifact.
type experiment struct {
	name  string
	about string
	run   func(out *output) error
}

var experiments = []experiment{
	{"table1", "instruction set semantics and TCPU cost", runTable1},
	{"table2", "statistics namespaces via the unified memory map", runTable2},
	{"fig1", "queue-size query walking a 3-switch path", runFig1},
	{"fig2", "RCP* vs native RCP convergence on a 10 Mb/s bottleneck", runFig2},
	{"fig3", "dataplane pipeline stages and forwarding latency", runFig3},
	{"fig4", "TPP wire format overheads (§3.3)", runFig4},
	{"fig5", "TCPU pipeline cycle model and the 300-cycle budget", runFig5},
	{"microburst", "§2.1 micro-burst detection vs coarse polling", runMicroburst},
	{"ndb", "§2.3 forwarding-plane debugger vs packet-copy baseline", runNdb},
	{"wireless", "per-packet SNR sampling vs polling (§2 extension)", runWireless},
	{"aimd", "extension: RCP* vs TCP-style AIMD head-to-head", runAIMD},
	{"breakdown", "§2.1 per-hop queueing-latency breakdown", runBreakdown},
	{"accounting", "§2.2 consistency: CSTORE vs racy read-modify-write", runAccounting},
	{"fct", "extension: flow completion time, RCP* vs AIMD", runFCT},
}

func main() {
	outDir := ""
	args := os.Args[1:]
	if len(args) >= 2 && args[0] == "-out" {
		outDir = args[1]
		args = args[2:]
	}
	if len(args) != 1 {
		usage()
		os.Exit(2)
	}
	name := args[0]

	out := &output{dir: outDir, w: os.Stdout}
	if name == "all" {
		for _, e := range experiments {
			fmt.Printf("== %s: %s ==\n", e.name, e.about)
			if err := e.run(out); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.name, err)
				os.Exit(1)
			}
			fmt.Println()
		}
		return
	}
	for _, e := range experiments {
		if e.name == name {
			if err := e.run(out); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
			return
		}
	}
	usage()
	os.Exit(2)
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: experiments [-out DIR] <experiment>")
	names := make([]string, 0, len(experiments)+1)
	for _, e := range experiments {
		names = append(names, fmt.Sprintf("  %-11s %s", e.name, e.about))
	}
	names = append(names, "  all         run everything")
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintln(os.Stderr, n)
	}
}

// output bundles the terminal stream and the optional CSV directory.
type output struct {
	dir string
	w   io.Writer
}

func (o *output) printf(format string, args ...any) {
	fmt.Fprintf(o.w, format, args...)
}

// csvFile opens DIR/name for writing, or returns nil when -out is
// unset (callers skip CSV emission then).
func (o *output) csvFile(name string) (*os.File, error) {
	if o.dir == "" {
		return nil, nil
	}
	if err := os.MkdirAll(o.dir, 0o755); err != nil {
		return nil, err
	}
	return os.Create(filepath.Join(o.dir, name))
}
