package main

import (
	"fmt"

	"repro/internal/chaos"
	"repro/internal/trace"
)

// runHostile runs the hostile-tenant isolation soak: a rogue tenant
// floods forged write-TPPs at two guarded switches while two victim
// RCP* flows and a victim accounting pair share the fabric.  It reports
// that the guard confined every forged write, the admission quota
// absorbed the flood, and the victims' control loops and shared tally
// came through untouched.
func runHostile(out *output) error {
	cfg := chaos.DefaultHostile(1)
	res := chaos.RunHostile(cfg)

	out.printf("hostile-tenant soak on 2 guarded switches (%v, seed %d)\n\n",
		cfg.Duration, cfg.Seed)
	out.printf("rogue: %.0f forged write-TPPs/s from %v (weighted share ~%.0f/s); victims: 2 RCP* flows + shared tally on a 20 Mb/s bottleneck\n\n",
		cfg.RoguePPS, cfg.RogueFrom, cfg.TPPRate/31)

	tbl := trace.NewTable("mechanism", "edge switch", "far switch")
	tbl.Row("forged writes denied", res.Denied[0], res.Denied[1])
	tbl.Row("  = metric", res.DeniedMetric[0], res.DeniedMetric[1])
	tbl.Row("  = guard table", res.DeniedTable[0], res.DeniedTable[1])
	tbl.Row("  = deny spans", res.DeniedSpans[0], res.DeniedSpans[1])
	tbl.Row("victim accesses denied", res.VictimDenied[0], res.VictimDenied[1])
	tbl.Row("rogue TPPs throttled", res.RogueThrottled[0], res.RogueThrottled[1])
	tbl.Row("victim TPPs throttled", res.VictimThrottled[0], res.VictimThrottled[1])
	tbl.Row("queue conservation (leaked)", res.Leaked, "-")
	out.printf("%s\n", tbl.String())

	out.printf("rogue sent %d forged TPPs; every denial was the rogue's, every view of the count agrees\n\n", res.RogueSent)
	out.printf("victim convergence: v1 %.0f B/s, v2 %.0f B/s (fair share %.0f B/s, window from %v)\n",
		res.V1Mean, res.V2Mean, res.FairShare, cfg.ConvergeFrom)
	out.printf("victim tally: %d adds acknowledged, %d abandoned, SRAM word reads %d, poller saw %d negative deltas / %d discontinuities over %d polls\n",
		res.WriterDone, res.WriterFailures, res.TallyPhysical,
		res.NegativeDeltas, res.Discontinuities, res.Polls)

	// Isolation is a contract: a breach fails the run, not just the
	// prose.
	switch {
	case !res.Scenario.OK():
		return fmt.Errorf("scenario not OK: aborted=%q failures=%v",
			res.Scenario.Aborted, res.Scenario.Failures())
	case res.Leaked != 0:
		return fmt.Errorf("queue conservation violated: %d packets unaccounted", res.Leaked)
	case res.RogueSent == 0:
		return fmt.Errorf("rogue generator sent nothing")
	case res.VictimDenied[0]+res.VictimDenied[1] != 0:
		return fmt.Errorf("%d victim accesses denied; verified programs must never fault",
			res.VictimDenied[0]+res.VictimDenied[1])
	case res.RogueDenied[0] != res.Denied[0] || res.RogueDenied[1] != res.Denied[1]:
		return fmt.Errorf("denials not all the rogue's: rogue %v vs total %v",
			res.RogueDenied, res.Denied)
	case uint64(res.TallyPhysical) != res.WriterDone:
		return fmt.Errorf("tally word %d != %d acknowledged adds",
			res.TallyPhysical, res.WriterDone)
	case res.SpansDropped != 0:
		return fmt.Errorf("tracer dropped %d spans", res.SpansDropped)
	}

	if f, err := out.csvFile("hostile.csv"); err != nil {
		return err
	} else if f != nil {
		defer f.Close()
		c := trace.NewCSV(f, "metric", "value")
		c.Row("rogue_sent", res.RogueSent)
		for i, name := range []string{"edge", "far"} {
			c.Row("denied_"+name, res.Denied[i])
			c.Row("victim_denied_"+name, res.VictimDenied[i])
			c.Row("rogue_throttled_"+name, res.RogueThrottled[i])
			c.Row("victim_throttled_"+name, res.VictimThrottled[i])
		}
		c.Row("v1_mean_bps", int64(res.V1Mean))
		c.Row("v2_mean_bps", int64(res.V2Mean))
		c.Row("fair_share_bps", int64(res.FairShare))
		c.Row("writer_done", res.WriterDone)
		c.Row("writer_failures", res.WriterFailures)
		c.Row("tally_physical", int64(res.TallyPhysical))
		c.Row("leaked_pkts", res.Leaked)
		return c.Err()
	}
	return nil
}
