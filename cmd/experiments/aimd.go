package main

import (
	"repro/internal/aimd"
	"repro/internal/trace"
)

// runAIMD is the extension experiment comparing RCP* against a
// TCP-style AIMD controller on the Figure 2 dumbbell: the quantitative
// version of the paper's motivation that loss-driven congestion control
// fills queues to find the fair share while RCP-style control reads it.
func runAIMD(out *output) error {
	cfg := aimd.DefaultCompareConfig()
	aimdRes := aimd.RunComparison(aimd.SchemeAIMD, cfg)
	rcpRes := aimd.RunComparison(aimd.SchemeRCPStar, cfg)

	out.printf("extension: RCP* vs TCP-style AIMD on the Figure 2 dumbbell (3 staggered flows, 30s)\n\n")
	tbl := trace.NewTable("scheme", "utilization", "Jain fairness",
		"mean queue (B)", "drops", "flow goodputs (Mb/s)")
	for _, r := range []aimd.CompareResult{rcpRes, aimdRes} {
		g := ""
		for i, f := range r.FlowGoodput {
			if i > 0 {
				g += " / "
			}
			g += sprintf("%.2f", f*8/1e6)
		}
		tbl.Row(string(r.Scheme), sprintf("%.2f", r.Utilization),
			sprintf("%.3f", r.JainIndex), int(r.MeanQueueBytes), r.DropPkts, g)
	}
	out.printf("%s\nRCP* reads the fair share from switch state; AIMD must fill the buffer and drop to find it\n",
		tbl.String())

	if f, err := out.csvFile("aimd.csv"); err != nil {
		return err
	} else if f != nil {
		defer f.Close()
		c := trace.NewCSV(f, "scheme", "utilization", "jain", "mean_queue_bytes", "drops")
		for _, r := range []aimd.CompareResult{rcpRes, aimdRes} {
			c.Row(string(r.Scheme), r.Utilization, r.JainIndex, r.MeanQueueBytes, r.DropPkts)
		}
		return c.Err()
	}
	return nil
}
