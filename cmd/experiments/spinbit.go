package main

import (
	"repro/internal/inband"
	"repro/internal/obs"
	"repro/internal/trace"
)

// runSpinBit runs the passive spin-bit scenario: a client/server pair
// ping-pongs a single alternating TOS bit, a mid-path switch infers
// per-flow RTT purely from edge-to-edge intervals on that bit, and a
// collector sweeps the inferred histogram out of SRAM.  The table
// compares the observer's distribution against the client's own
// flip-interval measurements — with zero end-host instrumentation on
// the measured path.
func runSpinBit(out *output) error {
	cfg := inband.DefaultSpin(1)
	res := inband.RunSpin(cfg)

	out.printf("passive spin-bit RTT observer on a 3-switch line (%v, seed %d, %d flips)\n\n",
		cfg.Duration, cfg.Seed, cfg.MaxFlips)

	tbl := trace.NewTable("metric", "value")
	tbl.Row("client spin flips (ground truth)", res.Flips)
	tbl.Row("observer edges detected", res.Edges)
	tbl.Row("observer samples bucketed", res.Samples)
	tbl.Row("collector sweeps", res.Sweeps)
	tbl.Row("sweep discontinuities", res.Discontinuities)
	out.printf("%s\n", tbl.String())

	match := res.Truth == res.SRAM && res.Truth == res.Current
	out.printf("truth vs observer: bucket-for-bucket match = %v\n", match)
	out.printf("reconciliation: edges(%d) == metric(%d) == spans(%d)\n",
		res.Edges, res.EdgesMetric, res.EdgeSpans)

	out.printf("\nRTT distribution (non-empty buckets, ns):\n")
	for i := range res.Truth {
		if res.Truth[i] == 0 && res.Current[i] == 0 {
			continue
		}
		out.printf("  [%d, %d]: truth %d, observer %d\n",
			obs.BucketLow(i), obs.BucketHigh(i), res.Truth[i], res.Current[i])
	}

	if f, err := out.csvFile("spinbit.csv"); err != nil {
		return err
	} else if f != nil {
		defer f.Close()
		c := trace.NewCSV(f, "bucket_lo", "bucket_hi", "truth_n", "dataplane_n", "cumulative_n")
		for i := range res.Truth {
			if res.Truth[i] == 0 && res.Current[i] == 0 && res.Cumulative[i] == 0 {
				continue
			}
			c.Row(obs.BucketLow(i), obs.BucketHigh(i),
				res.Truth[i], res.Current[i], res.Cumulative[i])
		}
		return c.Err()
	}
	return nil
}
