package main

import (
	"io"
	"os"
	"path/filepath"
	"testing"
)

// TestEveryExperimentRuns executes every registered experiment end to
// end, with CSV emission into a temp dir, so the reproduction harness
// can never silently rot.
func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments take a few seconds")
	}
	dir := t.TempDir()
	for _, e := range experiments {
		t.Run(e.name, func(t *testing.T) {
			out := &output{dir: dir, w: io.Discard}
			if err := e.run(out); err != nil {
				t.Fatalf("%s: %v", e.name, err)
			}
		})
	}
	// Every experiment must have produced at least one CSV.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < len(experiments) {
		t.Fatalf("only %d CSV files for %d experiments", len(entries), len(experiments))
	}
	for _, ent := range entries {
		info, _ := ent.Info()
		if info.Size() == 0 {
			t.Errorf("empty CSV %s", ent.Name())
		}
		if filepath.Ext(ent.Name()) != ".csv" {
			t.Errorf("unexpected artifact %s", ent.Name())
		}
	}
}

func TestExperimentNamesUniqueAndDescribed(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range experiments {
		if seen[e.name] {
			t.Errorf("duplicate experiment %q", e.name)
		}
		seen[e.name] = true
		if e.about == "" || e.run == nil {
			t.Errorf("experiment %q incomplete", e.name)
		}
	}
}
