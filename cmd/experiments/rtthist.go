package main

import (
	"repro/internal/inband"
	"repro/internal/obs"
	"repro/internal/trace"
)

// runRTTHist runs the in-band RTT histogram scenario: an end host
// CSTORE-buckets its own RTT samples into a tenant window at the spine,
// a collector sweeps the window with gated chunk TPPs, and the spine
// crash-restarts mid-run.  The table compares the dataplane-collected
// distribution against host-side ground truth and shows the exact
// CSTORE/sweep reconciliation across the wipe.
func runRTTHist(out *output) error {
	cfg := inband.DefaultHist(1)
	res := inband.RunHist(cfg)

	out.printf("in-band RTT histogram on a 2-leaf/1-spine fabric (%v, seed %d)\n",
		cfg.Duration, cfg.Seed)
	out.printf("faults: spine reboot at %v (boot %v), bursty loss %v-%v\n\n",
		cfg.RebootAt, cfg.BootDelay, cfg.LossFrom, cfg.LossTo)

	tbl := trace.NewTable("metric", "value")
	tbl.Row("RTT samples observed", res.Samples)
	tbl.Row("writer applied / duplicates", joinCounts(res.Applied, res.Duplicates))
	tbl.Row("writer rebases (epoch changes seen)", res.Rebases)
	tbl.Row("probe retransmissions", res.Retransmits)
	tbl.Row("switch CSTORE commits", res.SwitchCommits)
	tbl.Row("commits wiped by the crash", res.CapturedTotal)
	tbl.Row("commits in final SRAM", res.CurrentTotal)
	tbl.Row("collector sweeps / discontinuities", joinCounts(res.Sweeps, res.Discontinuities))
	tbl.Row("cumulative folded by sweeps", res.CumulativeTotal)
	out.printf("%s\n", tbl.String())

	match := res.Truth == res.Current && res.Truth == res.FinalSRAM
	out.printf("truth vs dataplane: bucket-for-bucket match = %v\n", match)
	out.printf("reconciliation: commits(%d) == metric(%d) == spans(%d); current(%d) + wiped(%d) == commits\n",
		res.SwitchCommits, res.CommitMetric, res.CommitSpans, res.CurrentTotal, res.CapturedTotal)

	out.printf("\nRTT distribution (non-empty buckets, ns):\n")
	for i := range res.Truth {
		if res.Truth[i] == 0 && res.Current[i] == 0 {
			continue
		}
		out.printf("  [%d, %d]: truth %d, dataplane %d\n",
			obs.BucketLow(i), obs.BucketHigh(i), res.Truth[i], res.Current[i])
	}

	if f, err := out.csvFile("rtthist.csv"); err != nil {
		return err
	} else if f != nil {
		defer f.Close()
		c := trace.NewCSV(f, "bucket_lo", "bucket_hi", "truth_n", "dataplane_n", "cumulative_n", "wiped_n")
		for i := range res.Truth {
			if res.Truth[i] == 0 && res.Current[i] == 0 && res.Cumulative[i] == 0 && res.CapturedAtWipe[i] == 0 {
				continue
			}
			c.Row(obs.BucketLow(i), obs.BucketHigh(i),
				res.Truth[i], res.Current[i], res.Cumulative[i], res.CapturedAtWipe[i])
		}
		return c.Err()
	}
	return nil
}
