package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const goodDoc = `
topology:
  leaves: 2
  spines: 2
  hosts: 2
  guard: true
  tpprate: 1000
spec:
  devices:
    - device: leaf0
      tenants:
        - id: 1
          policy: control
          words: 64
          weight: 10
          burst: 16
      services:
        - name: rcp
          words: 8
          seed: [1250000]
      routes:
        - dst: 10.0.0.1
          prio: 100
          port: 2
        - dst: 10.0.9.9
          prio: 50
          drop: true
      prefixes:
        - prefix: 10.0.0.0/24
          port: 1
    - device: spine1
      routes:
        - dst: 10.0.0.1
          prio: 10
          port: 0
`

func writeDoc(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spec.yaml")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runCtl(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr strings.Builder
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestDryRunIsDefault(t *testing.T) {
	path := writeDoc(t, goodDoc)
	code, out, errOut := runCtl(t, path)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	for _, want := range []string{
		"device leaf0 (base epoch 0)",
		"+ tenant 1 policy=control words=64 weight=10 burst=16",
		"+ service rcp words=8 seed=1",
		"+ route dst=10.0.0.1 prio=100 -> port 2",
		"+ route dst=10.0.9.9 prio=50 -> drop",
		"+ prefix 10.0.0.0/24 -> port 1",
		"device spine1 (base epoch 0)",
		"dry run: 6 ops across 2 devices not applied (use -execute)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dry-run output missing %q:\n%s", want, out)
		}
	}
}

func TestDryRunDeterministic(t *testing.T) {
	path := writeDoc(t, goodDoc)
	_, first, _ := runCtl(t, path)
	_, second, _ := runCtl(t, path)
	if first != second {
		t.Fatalf("dry runs differ:\n%s\nvs\n%s", first, second)
	}
}

func TestExecuteConverges(t *testing.T) {
	path := writeDoc(t, goodDoc)
	code, out, errOut := runCtl(t, "-execute", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "converged: 6 ops applied in 1 attempt(s); live state verified field-for-field") {
		t.Errorf("missing converge report:\n%s", out)
	}
}

func TestExitCodes(t *testing.T) {
	for _, tc := range []struct {
		name string
		doc  string
		args []string
		want int
		msg  string // substring of stderr
	}{
		{name: "no args", args: []string{}, want: 2, msg: "usage"},
		{name: "unknown flag", doc: goodDoc, args: []string{"-bogus"}, want: 2},
		{name: "missing file", args: []string{"/nonexistent/spec.yaml"}, want: 2},
		{name: "bad yaml", doc: "spec:\n\tdevices:", want: 2, msg: "tabs"},
		{name: "unknown top key", doc: "stuff:\n  x: 1", want: 2, msg: "unknown key"},
		{name: "bad topology", doc: "topology:\n  leaves: 0", want: 2, msg: "at least one leaf"},
		{name: "bad spec", doc: "spec:\n  devices:\n    - device: leaf0\n      routes:\n        - dst: 10.0.0.1\n          prio: 1", want: 2, msg: "needs port or drop"},
		{
			name: "unknown device",
			doc:  "spec:\n  devices:\n    - device: leaf9\n      routes:\n        - dst: 10.0.0.1\n          prio: 1\n          port: 0",
			want: 1, msg: "unknown-device",
		},
		{
			name: "tenants without guard",
			doc:  "spec:\n  devices:\n    - device: leaf0\n      tenants:\n        - id: 1\n          words: 64",
			want: 1, msg: "spec-invalid",
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			args := tc.args
			if tc.doc != "" {
				args = append(args, writeDoc(t, tc.doc))
			}
			code, _, errOut := runCtl(t, args...)
			if code != tc.want {
				t.Fatalf("exit %d, want %d (stderr: %s)", code, tc.want, errOut)
			}
			if tc.msg != "" && !strings.Contains(errOut, tc.msg) {
				t.Errorf("stderr missing %q:\n%s", tc.msg, errOut)
			}
		})
	}
}

// TestExecutePartialConvergence: two services that are individually
// feasible but cannot coexist in the SRAM bank exhaust the budget; the
// exit code and the typed pending error report the partial convergence.
func TestExecutePartialConvergence(t *testing.T) {
	doc := `
spec:
  devices:
    - device: leaf0
      services:
        - name: aaa
          words: 2000
        - name: zzz
          words: 2000
    - device: spine0
      routes:
        - dst: 10.0.0.1
          prio: 10
          port: 0
`
	path := writeDoc(t, doc)
	code, out, errOut := runCtl(t, "-execute", "-budget", "2", path)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (stderr: %s)", code, errOut)
	}
	if !strings.Contains(errOut, "partial convergence after 2 attempts") ||
		!strings.Contains(errOut, "write-failed") {
		t.Errorf("stderr missing partial-convergence report:\n%s", errOut)
	}
	// The feasible device still converged: ops were applied each round.
	if !strings.Contains(out, "round at t=") {
		t.Errorf("no round reporting:\n%s", out)
	}
}
