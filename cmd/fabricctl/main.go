// Command fabricctl converges a simulated leaf-spine fabric onto a
// declarative spec.  The document names a topology and the desired
// per-device state (tenants, services, routes, prefixes):
//
//	topology:
//	  leaves: 2
//	  spines: 2
//	  hosts: 2        # per leaf
//	  guard: true     # tenant guard tables on every switch
//	spec:
//	  devices:
//	    - device: leaf0
//	      routes:
//	        - dst: 10.0.0.1
//	          prio: 100
//	          port: 2
//
// Switches are named leaf0..leafN-1 and spine0..spineM-1.  By default
// fabricctl is a dry run: it reads the live state back, diffs it
// against the spec and prints the ordered ChangeSet without applying
// anything.  With -execute it converges (diff, apply atomically per
// device with epoch-stamped writes, re-read and verify field by field,
// retry with bounded backoff) and reports the outcome.
//
// Exit status: 0 on a clean dry run or full convergence, 1 when the
// diff or converge reports device errors or convergence is partial,
// 2 on usage, parse or spec errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/asic"
	"repro/internal/fabric"
	"repro/internal/fabric/yamlite"
	"repro/internal/netsim"
	"repro/internal/topo"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// topology is the simulated fabric a document provisions.
type topology struct {
	Leaves, Spines, Hosts int
	Guard                 bool
	TPPRate               float64
	TPPBurst              int
}

func defaultTopology() topology {
	return topology{Leaves: 2, Spines: 2, Hosts: 2}
}

func decodeTopology(n *yamlite.Node) (topology, error) {
	t := defaultTopology()
	if n == nil {
		return t, nil
	}
	for _, k := range n.Keys() {
		v := n.Get(k)
		var err error
		switch k {
		case "leaves":
			var x int64
			if x, err = v.Int(); err == nil {
				t.Leaves = int(x)
			}
		case "spines":
			var x int64
			if x, err = v.Int(); err == nil {
				t.Spines = int(x)
			}
		case "hosts":
			var x int64
			if x, err = v.Int(); err == nil {
				t.Hosts = int(x)
			}
		case "guard":
			t.Guard, err = v.Bool()
		case "tpprate":
			t.TPPRate, err = v.Float()
		case "tppburst":
			var x int64
			if x, err = v.Int(); err == nil {
				t.TPPBurst = int(x)
			}
		default:
			return t, fmt.Errorf("topology: unknown key %q", k)
		}
		if err != nil {
			return t, fmt.Errorf("topology: %s: %v", k, err)
		}
	}
	if t.Leaves < 1 || t.Spines < 1 || t.Hosts < 0 {
		return t, fmt.Errorf("topology: needs at least one leaf and one spine")
	}
	return t, nil
}

// build instantiates the simulated fabric and registers every switch on
// a controller under its leaf<i>/spine<j> name.
func build(sim *netsim.Sim, t topology) *fabric.Controller {
	ports := t.Spines + t.Hosts
	if t.Leaves > ports {
		ports = t.Leaves
	}
	cfg := asic.Config{Ports: ports, Guard: t.Guard,
		TPPRate: t.TPPRate, TPPBurst: t.TPPBurst}
	edge := topo.Mbps(20, 10*netsim.Microsecond)
	backbone := topo.Mbps(10, 10*netsim.Microsecond)
	_, _, leafSW, spineSW := topo.LeafSpine(sim, t.Leaves, t.Spines, t.Hosts, edge, backbone, cfg)
	ctl := fabric.New(sim)
	for i, sw := range leafSW {
		ctl.Register(fmt.Sprintf("leaf%d", i), sw)
	}
	for j, sw := range spineSW {
		ctl.Register(fmt.Sprintf("spine%d", j), sw)
	}
	return ctl
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fabricctl", flag.ContinueOnError)
	fs.SetOutput(stderr)
	execute := fs.Bool("execute", false, "apply the ChangeSet (default: dry run)")
	seed := fs.Int64("seed", 1, "simulation seed")
	budget := fs.Int("budget", 5, "converge attempt budget")
	backoffStr := fs.String("backoff", "10ms", "initial retry backoff (doubles per attempt)")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: fabricctl [-execute] [-seed N] [-budget N] [-backoff DUR] <spec.yaml>")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}
	backoff, err := fabric.ParseDuration(*backoffStr)
	if err != nil {
		fmt.Fprintf(stderr, "fabricctl: %v\n", err)
		return 2
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "fabricctl: %v\n", err)
		return 2
	}

	root, err := yamlite.Parse(string(src))
	if err != nil {
		fmt.Fprintf(stderr, "fabricctl: %v\n", err)
		return 2
	}
	for _, k := range root.Keys() {
		if k != "topology" && k != "spec" {
			fmt.Fprintf(stderr, "fabricctl: unknown key %q (allowed: topology, spec)\n", k)
			return 2
		}
	}
	topoSpec, err := decodeTopology(root.Get("topology"))
	if err != nil {
		fmt.Fprintf(stderr, "fabricctl: %v\n", err)
		return 2
	}
	spec, err := fabric.DecodeSpec(root.Get("spec"))
	if err != nil {
		fmt.Fprintf(stderr, "fabricctl: %v\n", err)
		return 2
	}

	sim := netsim.New(*seed)
	ctl := build(sim, topoSpec)

	cs, derrs, err := ctl.Diff(spec)
	if err != nil {
		fmt.Fprintf(stderr, "fabricctl: %v\n", err)
		return 2
	}
	fmt.Fprint(stdout, cs.String())
	if len(derrs) > 0 {
		for _, de := range derrs {
			fmt.Fprintf(stderr, "fabricctl: %v\n", de)
		}
		return 1
	}
	if !*execute {
		if !cs.Empty() {
			fmt.Fprintf(stdout, "dry run: %d ops across %d devices not applied (use -execute)\n",
				cs.Ops(), len(cs.Devices))
		}
		return 0
	}

	cfg := fabric.ConvergeConfig{Budget: *budget, Backoff: backoff}
	var res fabric.ConvergeResult
	done := false
	ctl.Converge(spec, cfg, func(r fabric.ConvergeResult) { res, done = r, true })
	deadline := sim.Now() + netsim.Second
	for !done && sim.Now() < deadline {
		sim.RunUntil(sim.Now() + netsim.Millisecond)
	}
	if !done {
		fmt.Fprintln(stderr, "fabricctl: converge did not finish within 1s of simulated time")
		return 1
	}
	for _, r := range res.Rounds {
		fmt.Fprintf(stdout, "round at t=%dns: %d ops planned, %d applied, %d errors\n",
			r.At, r.Ops, r.Applied, len(r.Errors))
	}
	if !res.Converged {
		fmt.Fprintf(stderr, "fabricctl: partial convergence after %d attempts (budget exhausted: %v)\n",
			res.Attempts, res.BudgetExhausted)
		for _, de := range res.Pending {
			fmt.Fprintf(stderr, "fabricctl: pending: %v\n", de)
		}
		return 1
	}
	if errs := ctl.Verify(spec); len(errs) > 0 {
		for _, de := range errs {
			fmt.Fprintf(stderr, "fabricctl: verify: %v\n", de)
		}
		return 1
	}
	fmt.Fprintf(stdout, "converged: %d ops applied in %d attempt(s); live state verified field-for-field\n",
		res.OpsApplied, res.Attempts)
	return 0
}
