package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const probe = `
.mem 6
PUSH [Switch:SwitchID]
PUSH [Queue:QueueSize]
`

func TestRunLineLoaded(t *testing.T) {
	var b strings.Builder
	if err := run("line", 3, true, probe, &b, nil, nil); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "ptr=24") {
		t.Fatalf("missing final pointer:\n%s", out)
	}
	for _, want := range []string{"hop 1:", "hop 2:", "hop 3:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
	// With -load, the first hop shows a queue (second value of hop 1).
	line := out[strings.Index(out, "hop 1:"):]
	line = line[:strings.Index(line, "\n")]
	fields := strings.Fields(line)
	if len(fields) != 4 || fields[3] == "0" {
		t.Fatalf("loaded hop 1 shows no queue: %q", line)
	}
}

func TestRunDumbbell(t *testing.T) {
	var b strings.Builder
	if err := run("dumbbell", 0, false, ".mem 4\nPUSH [Link:RCP-RateRegister]", &b, nil, nil); err != nil {
		t.Fatal(err)
	}
	// The dumbbell initializes rate registers to capacity; the probe
	// crosses two switches.
	if !strings.Contains(b.String(), "ptr=8") {
		t.Fatalf("output:\n%s", b.String())
	}
}

func TestRunErrors(t *testing.T) {
	var b strings.Builder
	if err := run("ring", 3, false, probe, &b, nil, nil); err == nil {
		t.Error("unknown topology accepted")
	}
	if err := run("line", 3, false, "NOT A PROGRAM", &b, nil, nil); err == nil {
		t.Error("bad program accepted")
	}
}

// TestRunTelemetry is the acceptance scenario: a probe through a
// 2-switch line with -trace and -metrics produces a reconstructable
// per-hop span log (parser through scheduler, plus link events) and a
// JSONL metrics snapshot carrying queue-depth and TCPU-cycle
// histograms.
func TestRunTelemetry(t *testing.T) {
	var out, metrics, spans strings.Builder
	if err := run("line", 2, true, probe, &out, &metrics, &spans); err != nil {
		t.Fatal(err)
	}

	// The probe journey is printed, with both hops visible.
	txt := out.String()
	if !strings.Contains(txt, "probe journey") {
		t.Fatalf("no journey printed:\n%s", txt)
	}
	journey := txt[strings.Index(txt, "probe journey"):]
	for _, stage := range []string{"parser", "tcpu", "memmgr", "enqueue", "sched", "link-tx", "link-rx"} {
		if strings.Count(journey, " "+stage+" ") < 2 {
			t.Fatalf("journey misses stage %q at both hops:\n%s", stage, journey)
		}
	}

	// The span log is JSONL: every line decodes, and the probe's
	// events reconstruct an ordered per-hop record.
	type spanLine struct {
		At    int64  `json:"at_ns"`
		UID   uint64 `json:"uid"`
		Node  uint32 `json:"node"`
		Stage string `json:"stage"`
	}
	var probeUID uint64
	var events []spanLine
	for _, line := range strings.Split(strings.TrimSpace(spans.String()), "\n") {
		var ev spanLine
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad span line %q: %v", line, err)
		}
		events = append(events, ev)
		if ev.Stage == "tcpu" {
			probeUID = ev.UID
		}
	}
	if probeUID == 0 {
		t.Fatal("no TCPU span in the log")
	}
	var hops []uint32
	lastAt := int64(-1)
	for _, ev := range events {
		if ev.UID != probeUID {
			continue
		}
		if ev.At < lastAt {
			t.Fatalf("span log out of order at %+v", ev)
		}
		lastAt = ev.At
		if ev.Stage == "parser" {
			hops = append(hops, ev.Node)
		}
	}
	if len(hops) != 2 || hops[0] == hops[1] {
		t.Fatalf("probe crossed switches %v, want 2 distinct hops", hops)
	}

	// The metrics snapshot carries the two tentpole histograms with
	// observations in them.
	type metricLine struct {
		Name  string `json:"name"`
		Kind  string `json:"kind"`
		Count uint64 `json:"count"`
	}
	found := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSpace(metrics.String()), "\n") {
		var m metricLine
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad metric line %q: %v", line, err)
		}
		if strings.HasSuffix(m.Name, "queue_depth_bytes") && m.Count > 0 {
			found["queue_depth"] = true
		}
		if strings.HasSuffix(m.Name, "tcpu_cycles") && m.Count > 0 {
			found["tcpu_cycles"] = true
		}
	}
	if !found["queue_depth"] || !found["tcpu_cycles"] {
		t.Fatalf("snapshot misses histograms (found %v):\n%s", found, metrics.String())
	}
}
