package main

import (
	"strings"
	"testing"
)

const probe = `
.mem 6
PUSH [Switch:SwitchID]
PUSH [Queue:QueueSize]
`

func TestRunLineLoaded(t *testing.T) {
	var b strings.Builder
	if err := run("line", 3, true, probe, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "ptr=24") {
		t.Fatalf("missing final pointer:\n%s", out)
	}
	for _, want := range []string{"hop 1:", "hop 2:", "hop 3:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
	// With -load, the first hop shows a queue (second value of hop 1).
	line := out[strings.Index(out, "hop 1:"):]
	line = line[:strings.Index(line, "\n")]
	fields := strings.Fields(line)
	if len(fields) != 4 || fields[3] == "0" {
		t.Fatalf("loaded hop 1 shows no queue: %q", line)
	}
}

func TestRunDumbbell(t *testing.T) {
	var b strings.Builder
	if err := run("dumbbell", 0, false, ".mem 4\nPUSH [Link:RCP-RateRegister]", &b); err != nil {
		t.Fatal(err)
	}
	// The dumbbell initializes rate registers to capacity; the probe
	// crosses two switches.
	if !strings.Contains(b.String(), "ptr=8") {
		t.Fatalf("output:\n%s", b.String())
	}
}

func TestRunErrors(t *testing.T) {
	var b strings.Builder
	if err := run("ring", 3, false, probe, &b); err == nil {
		t.Error("unknown topology accepted")
	}
	if err := run("line", 3, false, "NOT A PROGRAM", &b); err == nil {
		t.Error("bad program accepted")
	}
}
