// Command tppsim sends a user-supplied tiny packet program across a
// simulated topology and prints the fully executed program the receiver
// echoed back, one hop per line — an interactive "what would the
// network tell me" tool.
//
// Usage:
//
//	tppsim [-topo line|dumbbell] [-switches N] [-load] [file.tpp]
//
// The program is read from file.tpp (or stdin).  With -load, a
// 20-packet burst is queued ahead of the probe so queue statistics are
// non-trivial.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/asic"
	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/endhost"
	"repro/internal/netsim"
	"repro/internal/rcp"
	"repro/internal/topo"
)

func main() {
	topoName := flag.String("topo", "line", "topology: line or dumbbell")
	switches := flag.Int("switches", 3, "switch count (line topology)")
	load := flag.Bool("load", false, "queue a burst ahead of the probe")
	flag.Parse()

	src, err := readInput(flag.Args())
	if err != nil {
		fail(err)
	}
	if err := run(*topoName, *switches, *load, src, os.Stdout); err != nil {
		fail(err)
	}
}

// run executes the scenario; split out of main for testability.
func run(topoName string, switches int, load bool, src string, w io.Writer) error {
	prog, err := asm.Assemble(src)
	if err != nil {
		return err
	}

	sim := netsim.New(1)
	edge := topo.Mbps(80, 10*netsim.Microsecond)
	backbone := topo.Mbps(8, 10*netsim.Microsecond)

	var n *topo.Network
	var from, to *endhost.Host
	switch topoName {
	case "line":
		n, from, to, _ = topo.Line(sim, switches, edge, backbone, asic.Config{})
	case "dumbbell":
		var senders, receivers []*endhost.Host
		var a, b *asic.Switch
		n, senders, receivers, a, b = topo.Dumbbell(sim, 2, edge, backbone, asic.Config{})
		rcp.InitRateRegisters(a, b)
		from, to = senders[0], receivers[0]
	default:
		return fmt.Errorf("unknown topology %q", topoName)
	}
	n.PrimeL2(5 * netsim.Millisecond)

	if load {
		for i := 0; i < 20; i++ {
			from.Send(from.NewPacket(to.MAC, to.IP, 5000, 5001, 986))
		}
	}

	prober := endhost.NewProber(from)
	var echoed *core.TPP
	prober.Probe(to.MAC, to.IP, prog.TPP, func(e *core.TPP) { echoed = e })
	sim.RunUntil(sim.Now() + netsim.Second)

	if echoed == nil {
		return fmt.Errorf("probe was lost (congestion?)")
	}
	fmt.Fprintf(w, "executed program returned: ptr=%d flags=%#x\n", echoed.Ptr, echoed.Flags)
	perHop := len(prog.TPP.Ins)
	if echoed.Mode == core.AddrStack && perHop > 0 {
		hops := int(echoed.Ptr) / 4 / perHop
		for h := 0; h < hops; h++ {
			fmt.Fprintf(w, "hop %d:", h+1)
			for k := 0; k < perHop; k++ {
				fmt.Fprintf(w, " %d", echoed.Word(h*perHop+k))
			}
			fmt.Fprintln(w)
		}
	}
	for i := 0; i < echoed.MemWords(); i++ {
		fmt.Fprintf(w, "mem[%2d] = 0x%08x (%d)\n", i, echoed.Word(i), echoed.Word(i))
	}
	return nil
}

func readInput(args []string) (string, error) {
	if len(args) == 0 || args[0] == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(args[0])
	return string(b), err
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tppsim:", err)
	os.Exit(1)
}
