// Command tppsim sends a user-supplied tiny packet program across a
// simulated topology and prints the fully executed program the receiver
// echoed back, one hop per line — an interactive "what would the
// network tell me" tool.
//
// Usage:
//
//	tppsim [-topo line|dumbbell] [-switches N] [-load] [-metrics FILE] [-trace FILE] [-cpuprofile FILE] [-memprofile FILE] [file.tpp]
//
// The program is read from file.tpp (or stdin).  With -load, a
// 20-packet burst is queued ahead of the probe so queue statistics are
// non-trivial.  -metrics and -trace enable the telemetry subsystem
// (internal/obs): a JSONL metrics snapshot and the packet-lifecycle
// span log are written to the given files ("-" for stdout), and the
// probe's reconstructed journey is printed.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/asic"
	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/endhost"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/rcp"
	"repro/internal/topo"
)

func main() {
	topoName := flag.String("topo", "line", "topology: line or dumbbell")
	switches := flag.Int("switches", 3, "switch count (line topology)")
	load := flag.Bool("load", false, "queue a burst ahead of the probe")
	metricsPath := flag.String("metrics", "", `write a JSONL metrics snapshot here ("-" for stdout)`)
	tracePath := flag.String("trace", "", `write the packet-lifecycle span log here as JSONL ("-" for stdout)`)
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile here (go tool pprof)")
	memProfile := flag.String("memprofile", "", "write a heap profile here on exit (go tool pprof)")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	defer writeMemProfile(*memProfile)

	src, err := readInput(flag.Args())
	if err != nil {
		fail(err)
	}
	metricsW, closeMetrics, err := openOut(*metricsPath)
	if err != nil {
		fail(err)
	}
	defer closeMetrics()
	traceW, closeTrace, err := openOut(*tracePath)
	if err != nil {
		fail(err)
	}
	defer closeTrace()
	if err := run(*topoName, *switches, *load, src, os.Stdout, metricsW, traceW); err != nil {
		fail(err)
	}
}

// openOut resolves an output flag: empty means disabled (nil writer),
// "-" means stdout, anything else is created as a file.
func openOut(path string) (io.Writer, func(), error) {
	switch path {
	case "":
		return nil, func() {}, nil
	case "-":
		return os.Stdout, func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, func() {}, err
	}
	return f, func() { f.Close() }, nil
}

// run executes the scenario; split out of main for testability.  A nil
// metricsW/traceW disables the corresponding telemetry half.
func run(topoName string, switches int, load bool, src string, w, metricsW, traceW io.Writer) error {
	prog, err := asm.Assemble(src)
	if err != nil {
		return err
	}

	var reg *obs.Registry
	var tracer *obs.Tracer
	if metricsW != nil {
		reg = obs.NewRegistry()
	}
	if traceW != nil {
		tracer = obs.NewTracer(0)
	}

	sim := netsim.New(1)
	edge := topo.Mbps(80, 10*netsim.Microsecond)
	backbone := topo.Mbps(8, 10*netsim.Microsecond)
	swCfg := asic.Config{Metrics: reg, Trace: tracer}

	var n *topo.Network
	var from, to *endhost.Host
	switch topoName {
	case "line":
		n, from, to, _ = topo.Line(sim, switches, edge, backbone, swCfg)
	case "dumbbell":
		var senders, receivers []*endhost.Host
		var a, b *asic.Switch
		n, senders, receivers, a, b = topo.Dumbbell(sim, 2, edge, backbone, swCfg)
		rcp.InitRateRegisters(a, b)
		from, to = senders[0], receivers[0]
	default:
		return fmt.Errorf("unknown topology %q", topoName)
	}
	n.PrimeL2(5 * netsim.Millisecond)

	if load {
		for i := 0; i < 20; i++ {
			from.Send(from.NewPacket(to.MAC, to.IP, 5000, 5001, 986))
		}
	}

	prober := endhost.NewProber(from)
	var echoed *core.TPP
	prober.Probe(to.MAC, to.IP, prog.TPP, func(e *core.TPP) { echoed = e })
	sim.RunUntil(sim.Now() + netsim.Second)

	if echoed == nil {
		return fmt.Errorf("probe was lost (congestion?)")
	}
	fmt.Fprintf(w, "executed program returned: ptr=%d flags=%#x\n", echoed.Ptr, echoed.Flags)
	perHop := len(prog.TPP.Ins)
	if echoed.Mode == core.AddrStack && perHop > 0 {
		hops := int(echoed.Ptr) / 4 / perHop
		for h := 0; h < hops; h++ {
			fmt.Fprintf(w, "hop %d:", h+1)
			for k := 0; k < perHop; k++ {
				fmt.Fprintf(w, " %d", echoed.Word(h*perHop+k))
			}
			fmt.Fprintln(w)
		}
	}
	for i := 0; i < echoed.MemWords(); i++ {
		fmt.Fprintf(w, "mem[%2d] = 0x%08x (%d)\n", i, echoed.Word(i), echoed.Word(i))
	}

	if tracer != nil {
		// The probe is the only TPP-carrying packet, so the last TCPU
		// span identifies it; reconstruct and print its full journey.
		var probeUID uint64
		for _, ev := range tracer.Events() {
			if ev.Stage == obs.StageTCPU {
				probeUID = ev.UID
			}
		}
		if probeUID != 0 {
			fmt.Fprintf(w, "\nprobe journey (uid %#x):\n", probeUID)
			for _, ev := range tracer.Journey(probeUID) {
				fmt.Fprintf(w, "  %9dns  node %-3d %-12s a=%d b=%d\n",
					ev.At, ev.Node, ev.Stage, ev.A, ev.B)
			}
		}
		if err := tracer.WriteJSONL(traceW); err != nil {
			return err
		}
	}
	if reg != nil {
		if err := reg.Snapshot(int64(sim.Now())).WriteJSONL(metricsW); err != nil {
			return err
		}
	}
	return nil
}

func readInput(args []string) (string, error) {
	if len(args) == 0 || args[0] == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(args[0])
	return string(b), err
}

// writeMemProfile dumps a GC-settled heap profile on clean exit.
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tppsim:", err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, "tppsim:", err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tppsim:", err)
	os.Exit(1)
}
