package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "prog.tpp")
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const sampleProg = `
.mem 6
PUSH [Switch:SwitchID]
PUSH [Queue:QueueSize]
`

func TestCmdAsm(t *testing.T) {
	var b strings.Builder
	if err := dispatch("asm", []string{writeTemp(t, sampleProg)}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"2 instructions", "6 words", "PUSH"} {
		if !strings.Contains(out, want) {
			t.Errorf("asm output missing %q:\n%s", want, out)
		}
	}
	// The last line is the hex wire image.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	hexLine := lines[len(lines)-1]
	if len(hexLine) != 2*(12+8+24) { // header + 2 ins + 6 words
		t.Fatalf("hex length %d", len(hexLine))
	}
}

func TestAsmThenDisasmRoundTrip(t *testing.T) {
	var hexOut strings.Builder
	if err := dispatch("asm", []string{writeTemp(t, sampleProg)}, &hexOut); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(hexOut.String()), "\n")
	hexFile := writeTemp(t, lines[len(lines)-1])

	var dis strings.Builder
	if err := dispatch("disasm", []string{hexFile}, &dis); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{".mode stack", ".mem 6",
		"PUSH [Switch:SwitchID]", "PUSH [Queue:QueueSize]"} {
		if !strings.Contains(dis.String(), want) {
			t.Errorf("disasm missing %q:\n%s", want, dis.String())
		}
	}
}

func TestCmdRun(t *testing.T) {
	var b strings.Builder
	if err := dispatch("run", []string{writeTemp(t, sampleProg)}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "hop 1: executed=2") {
		t.Fatalf("run output:\n%s", out)
	}
	if !strings.Contains(out, "ptr=24") { // 3 hops x 2 words x 4 bytes
		t.Fatalf("run output missing final pointer:\n%s", out)
	}
	// Switch id 1 appears in the recorded memory.
	if !strings.Contains(out, "mem[ 0] = 0x00000001 (1)") {
		t.Fatalf("recorded memory wrong:\n%s", out)
	}
}

func TestCmdSymbols(t *testing.T) {
	var b strings.Builder
	if err := dispatch("symbols", nil, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Switch:SwitchID", "Link:RCP-RateRegister", "rw", "ro"} {
		if !strings.Contains(out, want) {
			t.Errorf("symbols output missing %q", want)
		}
	}
}

func TestDispatchErrors(t *testing.T) {
	var b strings.Builder
	if err := dispatch("frobnicate", nil, &b); err == nil {
		t.Error("unknown command accepted")
	}
	if err := dispatch("asm", []string{writeTemp(t, "BOGUS")}, &b); err == nil {
		t.Error("bad program accepted")
	}
	if err := dispatch("asm", []string{"/nonexistent/file"}, &b); err == nil {
		t.Error("missing file accepted")
	}
	if err := dispatch("disasm", []string{writeTemp(t, "zz-not-hex")}, &b); err == nil {
		t.Error("bad hex accepted")
	}
	if err := dispatch("disasm", []string{writeTemp(t, "0102")}, &b); err == nil {
		t.Error("truncated wire image accepted")
	}
	if err := dispatch("run", []string{writeTemp(t, "BOGUS")}, &b); err == nil {
		t.Error("bad run program accepted")
	}
}

func TestCmdAsmVerifyRejects(t *testing.T) {
	// A POP into the read-only switch identification range must fail
	// verification, name the offending source line, and return an
	// error (non-zero exit).
	file := writeTemp(t, `
.mem 2
PUSH [Queue:QueueSize]
POP [Switch:SwitchID]
`)
	var b strings.Builder
	err := dispatch("asm", []string{"-verify", file}, &b)
	if err == nil {
		t.Fatalf("verify accepted a read-only store; output:\n%s", b.String())
	}
	if !strings.Contains(err.Error(), "verification failed") {
		t.Fatalf("unexpected error: %v", err)
	}
	want := file + ":4: error:"
	if !strings.Contains(b.String(), want) {
		t.Fatalf("diagnostic missing source attribution %q:\n%s", want, b.String())
	}
}

func TestCmdAsmVerifyAccepts(t *testing.T) {
	var b strings.Builder
	if err := dispatch("asm", []string{"-verify", writeTemp(t, sampleProg)}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "# ins 0:") {
		t.Fatalf("verified program not assembled:\n%s", b.String())
	}
}

func TestCmdAsmVerifyDeviceLimit(t *testing.T) {
	// -max-instructions tightens the device limit below the program
	// length.
	var b strings.Builder
	err := dispatch("asm", []string{"-verify", "-max-instructions", "1", writeTemp(t, sampleProg)}, &b)
	if err == nil {
		t.Fatalf("2-instruction program passed a 1-instruction device limit:\n%s", b.String())
	}
}
