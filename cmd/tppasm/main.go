// Command tppasm assembles, disassembles and dry-runs tiny packet
// programs.
//
// Usage:
//
//	tppasm asm [-verify] [file]   assemble TPP assembly (stdin default)
//	                              to hex; -verify statically checks the
//	                              program first and refuses to emit one
//	                              that carries error diagnostics
//	tppasm disasm [file]          disassemble hex wire format back to
//	                              assembly
//	tppasm run [file]             assemble, then execute against a
//	                              standalone switch model, printing the
//	                              packet memory
//	tppasm symbols                print the [Namespace:Statistic] symbol
//	                              table
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/asic"
	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/netsim"
	"repro/internal/tcpu"
	"repro/internal/topo"
	"repro/internal/verify"
)

func main() {
	if len(os.Args) < 2 {
		fail("usage: tppasm asm|disasm|run|symbols [file]")
	}
	if err := dispatch(os.Args[1], os.Args[2:], os.Stdout); err != nil {
		fail("tppasm: " + err.Error())
	}
}

// dispatch routes one subcommand; split out of main for testability.
func dispatch(cmd string, args []string, w io.Writer) error {
	switch cmd {
	case "asm":
		return cmdAsm(args, w)
	case "disasm":
		return cmdDisasm(args, w)
	case "run":
		return cmdRun(args, w)
	case "symbols":
		return cmdSymbols(w)
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func fail(msg string) {
	fmt.Fprintln(os.Stderr, msg)
	os.Exit(1)
}

func readInput(args []string) (string, error) {
	if len(args) == 0 || args[0] == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(args[0])
	return string(b), err
}

// inputName returns the display name for diagnostics.
func inputName(args []string) string {
	if len(args) == 0 || args[0] == "-" {
		return "<stdin>"
	}
	return args[0]
}

func cmdAsm(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("asm", flag.ContinueOnError)
	doVerify := fs.Bool("verify", false, "statically verify the program; refuse to emit on errors")
	maxIns := fs.Int("max-instructions", 0, "device instruction limit for -verify (0: paper default)")
	ports := fs.Int("ports", 0, "device port count for -verify (0: don't check per-port bounds)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	args = fs.Args()
	src, err := readInput(args)
	if err != nil {
		return err
	}
	p, err := asm.Assemble(src)
	if err != nil {
		return err
	}
	if *doVerify {
		res := verify.Verify(p.TPP, verify.Config{MaxInstructions: *maxIns, Ports: *ports})
		for _, d := range res.Diags {
			printDiag(w, inputName(args), p, d)
		}
		if errs := res.Errors(); len(errs) != 0 {
			return fmt.Errorf("verification failed: %d error(s)", len(errs))
		}
	}
	wire := p.TPP.AppendTo(nil)
	fmt.Fprintf(w, "# %d instructions, %d words of packet memory (%d pooled), %d bytes on the wire\n",
		len(p.TPP.Ins), p.TPP.MemWords(), p.PoolWords, len(wire))
	for i, in := range p.TPP.Ins {
		fmt.Fprintf(w, "# ins %d: %08x  %s\n", i, in.Word(), in)
	}
	fmt.Fprintln(w, hex.EncodeToString(wire))
	return nil
}

// printDiag formats one verifier diagnostic with source-line
// attribution: "file:line: error: [code] msg" when the instruction maps
// back to a source line, the verifier's own "pc N" form otherwise.
func printDiag(w io.Writer, name string, p *asm.Program, d verify.Diagnostic) {
	if line := p.Line(d.PC); line > 0 {
		fmt.Fprintf(w, "%s:%d: %s: [%s] %s\n", name, line, d.Severity, d.Code, d.Msg)
		return
	}
	fmt.Fprintf(w, "%s: %s\n", name, d)
}

func cmdDisasm(args []string, w io.Writer) error {
	in, err := readInput(args)
	if err != nil {
		return err
	}
	wire, err := hex.DecodeString(strings.TrimSpace(in))
	if err != nil {
		return fmt.Errorf("decoding hex: %w", err)
	}
	var tpp core.TPP
	if _, err := core.ParseTPP(wire, &tpp); err != nil {
		return err
	}
	fmt.Fprint(w, asm.Disassemble(&tpp))
	return nil
}

// cmdRun assembles a program and executes it on one switch of a small
// line network, so authors can see exactly what each hop writes.
func cmdRun(args []string, w io.Writer) error {
	src, err := readInput(args)
	if err != nil {
		return err
	}
	p, err := asm.Assemble(src)
	if err != nil {
		return err
	}
	sim := netsim.New(1)
	n := topo.NewNetwork(sim)
	sw := n.AddSwitch(asic.Config{ID: 1, Ports: 2, TCPU: tcpu.Config{MaxInstructions: 16}})
	h := n.AddHost()
	n.LinkHost(h, sw, topo.Mbps(100, 0))
	sim.RunUntil(netsim.Millisecond)

	for hop := 1; hop <= 3; hop++ {
		view := sw.ViewForTesting(nil, 0)
		res := (tcpu.Config{MaxInstructions: 16}).Exec(p.TPP, view)
		fmt.Fprintf(w, "hop %d: executed=%d cycles=%d halted=%v", hop, res.Executed, res.Cycles, res.Halted)
		if res.Fault != nil {
			fmt.Fprintf(w, " fault=%v", res.Fault)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "ptr=%d flags=%#x\n", p.TPP.Ptr, p.TPP.Flags)
	for i := 0; i < p.TPP.MemWords(); i++ {
		fmt.Fprintf(w, "mem[%2d] = 0x%08x (%d)\n", i, p.TPP.Word(i), p.TPP.Word(i))
	}
	return nil
}

func cmdSymbols(w io.Writer) error {
	for _, name := range mem.SymbolNames() {
		a, _ := mem.LookupSymbol(name)
		rw := "ro"
		if mem.Writable(a) {
			rw = "rw"
		}
		fmt.Fprintf(w, "%-38s %#06x  %s\n", name, a.ByteAddr(), rw)
	}
	return nil
}
