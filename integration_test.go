package repro

import (
	"math"
	"testing"

	"repro/internal/accounting"
	"repro/internal/agent"
	"repro/internal/asic"
	"repro/internal/core"
	"repro/internal/endhost"
	"repro/internal/mem"
	"repro/internal/ndb"
	"repro/internal/netsim"
	"repro/internal/rcp"
	"repro/internal/topo"
)

// TestMultipleTasksCoexist is the §3.2 "Multiple tasks" claim end to
// end: RCP* congestion control, ndb forwarding verification and a
// CSTORE accounting counter run concurrently on one network, with the
// control-plane agent keeping their switch state disjoint.  Each task
// must behave exactly as it does alone.
func TestMultipleTasksCoexist(t *testing.T) {
	sim := netsim.New(1)
	n := topo.NewNetwork(sim)

	// Dumbbell with a 10 Mb/s bottleneck.
	swCfg := asic.Config{Ports: 10, QueueCapBytes: 125_000}
	a := n.AddSwitch(swCfg)
	b := n.AddSwitch(swCfg)
	aPort, _ := n.LinkSwitches(a, b, topo.Mbps(10, 10*netsim.Millisecond))
	edge := topo.Mbps(100, netsim.Millisecond)

	// Two RCP* flows.
	var rcpSenders, rcpReceivers []*endhost.Host
	for i := 0; i < 2; i++ {
		s := n.AddHost()
		n.LinkHost(s, a, edge)
		rcpSenders = append(rcpSenders, s)
		r := n.AddHost()
		n.LinkHost(r, b, edge)
		rcpReceivers = append(rcpReceivers, r)
	}
	// One host pair for ndb-instrumented traffic and the accounting
	// counter.
	dbgSrc := n.AddHost()
	n.LinkHost(dbgSrc, a, edge)
	dbgDst := n.AddHost()
	dbgPort := n.LinkHost(dbgDst, b, edge)
	n.PrimeL2(50 * netsim.Millisecond)

	// The agent partitions switch state between the tasks.
	ag := agent.New(a, b)
	acctTask, err := ag.Register("accounting", 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	rcpTask, err := ag.Register("rcp", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if addr, _ := rcpTask.ScratchAddr(0); addr != mem.PortBase+mem.PortScratchBase {
		t.Fatalf("rcp task got scratch %v, the RCP-RateRegister convention", addr)
	}
	if err := ag.SeedScratchFunc(rcpTask, 0, func(sw *asic.Switch, port int) uint32 {
		return sw.Port(port).Channel().RateBytes()
	}); err != nil {
		t.Fatal(err)
	}

	// Task 1: RCP* congestion control.
	params := rcp.DefaultParams()
	recvBytes := make([]uint64, 2)
	for i := 0; i < 2; i++ {
		i := i
		rcpReceivers[i].Handle(rcp.StarDataPort, func(p *core.Packet) {
			recvBytes[i] += uint64(p.PayloadLen())
		})
		ctl := rcp.NewStarController(sim, rcpSenders[i],
			endhost.NewProber(rcpSenders[i]),
			rcpReceivers[i].MAC, rcpReceivers[i].IP, params)
		ctl.Start()
	}

	// Task 2: ndb verification of the dbg pair's path (installed as
	// TCAM rules so matched-entry metadata exists).
	ctl := ndb.NewController()
	ctl.InstallPath(dbgDst.IP, 10, []ndb.PathHop{
		{Switch: a, OutPort: aPort},
		{Switch: b, OutPort: dbgPort},
	})
	var ndbTraces, ndbViolations int
	dbgDst.HandleDefault(func(p *core.Packet) {
		if p.TPP == nil {
			return
		}
		ndbTraces++
		ndbViolations += len(ctl.VerifyTrace(dbgDst.IP, ndb.ParseTrace(p.TPP)))
	})
	sim.Every(sim.Now()+20*netsim.Millisecond, 20*netsim.Millisecond, func() {
		pkt := dbgSrc.NewPacket(dbgDst.MAC, dbgDst.IP, 6000, 6001, 200)
		ndb.Instrument(pkt, 4)
		dbgSrc.Send(pkt)
	})

	// Task 3: an accounting counter in the agent-allocated SRAM on
	// switch b, incremented across the bottleneck.
	counter := accounting.NewCounter(endhost.NewProber(dbgSrc),
		dbgDst.MAC, dbgDst.IP, b.ID(), acctTask.Region.Base, accounting.Atomic)
	increments := 0
	var pump func(uint32)
	pump = func(uint32) {
		increments++
		if increments < 40 {
			counter.Add(1, pump)
		}
	}
	counter.Add(1, pump)

	sim.RunUntil(sim.Now() + 20*netsim.Second)

	// RCP*: both flows near their fair share of the bottleneck
	// (1.25 MB/s / 2 each), measured over the last 10 seconds... use
	// total goodput over 20s as the robust check.
	total := float64(recvBytes[0]+recvBytes[1]) / 20
	if total < 0.8*1.25e6 {
		t.Fatalf("RCP* goodput collapsed under multi-task load: %.0f B/s", total)
	}
	fairness := math.Abs(float64(recvBytes[0])-float64(recvBytes[1])) /
		float64(recvBytes[0]+recvBytes[1])
	if fairness > 0.15 {
		t.Fatalf("RCP* flows diverged: %v vs %v bytes", recvBytes[0], recvBytes[1])
	}

	// ndb: every trace verified clean.
	if ndbTraces < 100 {
		t.Fatalf("ndb traces: %d", ndbTraces)
	}
	if ndbViolations != 0 {
		t.Fatalf("ndb violations on a conforming fabric: %d", ndbViolations)
	}

	// Accounting: exact.
	if got := b.SRAM(mem.SRAMIndex(acctTask.Region.Base)); got != 40 {
		t.Fatalf("counter = %d, want 40", got)
	}
	if counter.Failures != 0 {
		t.Fatalf("counter abandoned %d updates", counter.Failures)
	}

	// Isolation: the accounting region and the RCP rate registers are
	// disjoint; the counter value never leaked into a rate register.
	if owner, ok := b.Allocator().Owner(acctTask.Region.Base); !ok || owner != "accounting" {
		t.Fatal("SRAM ownership lost")
	}
	if reg := a.Port(aPort).Scratch(0); reg == 40 {
		t.Fatal("rate register holds the counter value: state collided")
	}
}
