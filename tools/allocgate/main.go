// Command allocgate is the escape-regression gate: it asserts that
// functions annotated //alloc:free report no heap escapes under the
// compiler's escape analysis (go build -gcflags=-m), pinned against a
// committed baseline so regressions fail CI instead of silently
// re-introducing allocations on the fabric hot path.
//
// Usage:
//
//	allocgate [-write] [-baseline FILE] PKG...
//
// Annotations:
//
//	//alloc:free            (in a function's doc comment)
//	    every escape diagnostic inside the function body is gated.
//	//alloc:allow <reason>  (same line as the diagnostic or directly above)
//	    exempts one diagnosed line, for sanctioned cold-path or
//	    amortized allocations.
//
// Diagnostics on lines inside a panic(...) call are exempt
// automatically: fmt argument boxing on a path that aborts the
// simulation is not a hot-path allocation.
//
// The baseline maps each annotated function to its accepted escape
// messages (positions stripped, so unrelated edits don't churn it).
// Check mode fails when the computed state differs from the baseline
// in any way — a new escape, a fixed one, or an annotated function
// added or removed — forcing the diff through a conscious
// `allocgate -write` commit.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// annotation is one //alloc:free function: where it lives and the
// line spans exempted inside it.
type annotation struct {
	key        string // file.go:(*Recv).Name — the baseline key
	file       string // repo-root-relative path
	start, end int    // body line span, inclusive
	panicSpans [][2]int
}

// escapeRe matches the two diagnostic shapes that mean a heap
// allocation: "moved to heap: x" and "expr escapes to heap".  Lines
// like "x does not escape" and "leaking param: p" never match.
var (
	diagRe   = regexp.MustCompile(`^(\S+\.go):(\d+):\d+: (.*)$`)
	escapeRe = regexp.MustCompile(`(^moved to heap: )|( escapes to heap$)`)
)

func main() {
	write := flag.Bool("write", false, "rewrite the baseline instead of checking against it")
	baselinePath := flag.String("baseline", "ALLOCGATE.json", "baseline file")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: allocgate [-write] [-baseline FILE] PKG...")
		flag.PrintDefaults()
	}
	flag.Parse()
	pkgs := flag.Args()
	if len(pkgs) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	anns, allowed, err := collectAnnotations(pkgs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "allocgate:", err)
		os.Exit(2)
	}
	if len(anns) == 0 {
		fmt.Fprintln(os.Stderr, "allocgate: no //alloc:free annotations found under", pkgs)
		os.Exit(2)
	}

	out, err := buildDiagnostics(pkgs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "allocgate:", err)
		os.Exit(2)
	}
	state := attribute(anns, allowed, out)

	if *write {
		if err := writeBaseline(*baselinePath, state); err != nil {
			fmt.Fprintln(os.Stderr, "allocgate:", err)
			os.Exit(2)
		}
		escapes := 0
		for _, msgs := range state {
			escapes += len(msgs)
		}
		fmt.Printf("allocgate: baseline %s written: %d gated function(s), %d accepted escape(s)\n",
			*baselinePath, len(state), escapes)
		return
	}

	baseline, err := readBaseline(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "allocgate:", err)
		os.Exit(2)
	}
	problems := gate(state, baseline)
	for _, p := range problems {
		fmt.Println("allocgate:", p)
	}
	if len(problems) > 0 {
		fmt.Printf("allocgate: FAIL: %d drift(s) from %s; run `make allocgate-baseline` after auditing\n",
			len(problems), *baselinePath)
		os.Exit(1)
	}
	fmt.Printf("allocgate: ok: %d gated function(s) match %s\n", len(state), *baselinePath)
}

// collectAnnotations parses every non-test Go file under the package
// dirs and returns the //alloc:free functions plus the set of
// //alloc:allow-exempted file:line positions.
func collectAnnotations(pkgs []string) ([]annotation, map[string]bool, error) {
	var anns []annotation
	allowed := make(map[string]bool)
	fset := token.NewFileSet()
	for _, pkg := range pkgs {
		dir := strings.TrimPrefix(pkg, "./")
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, nil, err
		}
		for _, e := range entries {
			name := e.Name()
			if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(dir, name)
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				return nil, nil, err
			}
			rel := filepath.ToSlash(path)
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if strings.HasPrefix(c.Text, "//alloc:allow") {
						line := fset.Position(c.Pos()).Line
						allowed[fmt.Sprintf("%s:%d", rel, line)] = true
						allowed[fmt.Sprintf("%s:%d", rel, line+1)] = true
					}
				}
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !hasAllocFree(fd.Doc) {
					continue
				}
				ann := annotation{
					key:   fmt.Sprintf("%s:%s", rel, funcName(fd)),
					file:  rel,
					start: fset.Position(fd.Pos()).Line,
					end:   fset.Position(fd.End()).Line,
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
						ann.panicSpans = append(ann.panicSpans, [2]int{
							fset.Position(call.Pos()).Line,
							fset.Position(call.End()).Line,
						})
					}
					return true
				})
				anns = append(anns, ann)
			}
		}
	}
	sort.Slice(anns, func(i, j int) bool { return anns[i].key < anns[j].key })
	return anns, allowed, nil
}

func hasAllocFree(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(c.Text, "//alloc:free") {
			return true
		}
	}
	return false
}

// funcName renders a FuncDecl as (*Recv).Name / Recv.Name / Name.
func funcName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	switch t := fd.Recv.List[0].Type.(type) {
	case *ast.StarExpr:
		if id, ok := t.X.(*ast.Ident); ok {
			return fmt.Sprintf("(*%s).%s", id.Name, fd.Name.Name)
		}
	case *ast.Ident:
		return fmt.Sprintf("%s.%s", t.Name, fd.Name.Name)
	}
	return fd.Name.Name
}

// buildDiagnostics runs the compiler's escape analysis over the
// packages and returns its raw output.  The Go build cache replays
// these diagnostics on cached builds, so repeat runs stay cheap.
func buildDiagnostics(pkgs []string) (string, error) {
	cmd := exec.Command("go", append([]string{"build", "-gcflags=-m"}, pkgs...)...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		return "", fmt.Errorf("go build -gcflags=-m: %v\n%s", err, out)
	}
	return string(out), nil
}

// attribute maps each escape diagnostic to the //alloc:free function
// whose body span contains it, skipping allowed lines and panic call
// sites.  Every annotated function gets an entry (empty when clean),
// so removing an annotation is visible as baseline drift.
func attribute(anns []annotation, allowed map[string]bool, buildOut string) map[string][]string {
	state := make(map[string][]string, len(anns))
	for _, a := range anns {
		state[a.key] = []string{}
	}
	for _, line := range strings.Split(buildOut, "\n") {
		m := diagRe.FindStringSubmatch(line)
		if m == nil || !escapeRe.MatchString(m[3]) {
			continue
		}
		file, msg := filepath.ToSlash(m[1]), m[3]
		var ln int
		fmt.Sscanf(m[2], "%d", &ln)
		if allowed[fmt.Sprintf("%s:%d", file, ln)] {
			continue
		}
		for i := range anns {
			a := &anns[i]
			if a.file != file || ln < a.start || ln > a.end {
				continue
			}
			if inPanicSpan(a, ln) {
				break
			}
			state[a.key] = append(state[a.key], msg)
			break
		}
	}
	for k := range state {
		sort.Strings(state[k])
	}
	return state
}

func inPanicSpan(a *annotation, line int) bool {
	for _, s := range a.panicSpans {
		if line >= s[0] && line <= s[1] {
			return true
		}
	}
	return false
}

// gate compares the computed state against the baseline and returns
// the drift, one problem per line, sorted.
func gate(state, baseline map[string][]string) []string {
	var problems []string
	for key, msgs := range state {
		base, ok := baseline[key]
		if !ok {
			problems = append(problems, fmt.Sprintf("%s: gated function not in baseline (new //alloc:free annotation?)", key))
			continue
		}
		if !equalStrings(msgs, base) {
			problems = append(problems, fmt.Sprintf("%s: escapes changed: baseline %v, now %v", key, base, msgs))
		}
	}
	for key := range baseline {
		if _, ok := state[key]; !ok {
			problems = append(problems, fmt.Sprintf("%s: in baseline but no longer annotated //alloc:free", key))
		}
	}
	sort.Strings(problems)
	return problems
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func writeBaseline(path string, state map[string][]string) error {
	b, err := json.MarshalIndent(state, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func readBaseline(path string) (map[string][]string, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading baseline %s (run allocgate -write to create it): %w", path, err)
	}
	var state map[string][]string
	if err := json.Unmarshal(b, &state); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	return state, nil
}
