package main

import (
	"os"
	"path/filepath"
	"testing"
)

// fixture is a small annotated source file: one gated function with a
// panic call and an allowed line, one gated clean function, and one
// unannotated function whose escapes must be ignored.
const fixture = `package fix

import "fmt"

// hot is gated.
//
//alloc:free
func hot(n int) int {
	if n < 0 {
		panic(fmt.Sprintf("hot: negative %d",
			n))
	}
	//alloc:allow amortized scratch growth
	buf := make([]byte, n)
	return len(buf) + leak(n)
}

//alloc:free
func clean(n int) int { return n * 2 }

// cold is not gated: its escapes are invisible to the gate.
func cold(n int) *int { return &n }
`

func writeFixture(t *testing.T) (dir string, file string) {
	t.Helper()
	dir = t.TempDir()
	file = filepath.Join(dir, "fix.go")
	if err := os.WriteFile(file, []byte(fixture), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir, filepath.ToSlash(file)
}

func TestCollectAnnotations(t *testing.T) {
	dir, file := writeFixture(t)
	anns, allowed, err := collectAnnotations([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(anns) != 2 {
		t.Fatalf("annotations = %d, want 2: %+v", len(anns), anns)
	}
	if anns[0].key != file+":clean" || anns[1].key != file+":hot" {
		t.Fatalf("keys = %q, %q", anns[0].key, anns[1].key)
	}
	hot := anns[1]
	if len(hot.panicSpans) != 1 {
		t.Fatalf("panic spans = %v, want one", hot.panicSpans)
	}
	// The panic's Sprintf spans two lines; both must be covered.
	if s := hot.panicSpans[0]; s[1] != s[0]+1 {
		t.Fatalf("panic span %v does not cover the continuation line", s)
	}
	// The allow covers its own line and the next.
	if len(allowed) != 2 {
		t.Fatalf("allowed = %v, want the alloc:allow line and its successor", allowed)
	}
}

func TestAttribute(t *testing.T) {
	dir, file := writeFixture(t)
	anns, allowed, err := collectAnnotations([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	hot := anns[1]
	panicLine := hot.panicSpans[0][1] // Sprintf continuation inside panic
	var allowLine int
	for k := range allowed {
		var f string
		var l int
		splitKey(k, &f, &l)
		if l > allowLine {
			allowLine = l // the make([]byte, n) line
		}
	}
	out := "" +
		diag(file, panicLine, "n escapes to heap") + // panic path: exempt
		diag(file, allowLine, "make([]byte, n) escapes to heap") + // allowed
		diag(file, hot.start+8, "moved to heap: x") + // real regression
		diag(file, hot.end+5, "&n escapes to heap") + // outside any gated span
		diag(file, hot.start+8, "n does not escape") + // not an escape
		diag(file, hot.start+8, "leaking param: n") // not an allocation

	state := attribute(anns, allowed, out)
	if got := state[file+":hot"]; len(got) != 1 || got[0] != "moved to heap: x" {
		t.Fatalf("hot escapes = %v, want only the real regression", got)
	}
	if got := state[file+":clean"]; len(got) != 0 {
		t.Fatalf("clean escapes = %v, want none", got)
	}
}

func diag(file string, line int, msg string) string {
	return file + ":" + itoa(line) + ":1: " + msg + "\n"
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func splitKey(k string, file *string, line *int) {
	for i := len(k) - 1; i >= 0; i-- {
		if k[i] == ':' {
			*file = k[:i]
			n := 0
			for _, c := range k[i+1:] {
				n = n*10 + int(c-'0')
			}
			*line = n
			return
		}
	}
}

// The golden round-trip: a written baseline reads back identical, a
// matching state passes the gate, and every drift direction fails it.
func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ALLOCGATE.json")
	state := map[string][]string{
		"a.go:f": {},
		"b.go:g": {"moved to heap: x"},
	}
	if err := writeBaseline(path, state); err != nil {
		t.Fatal(err)
	}
	got, err := readBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if probs := gate(state, got); len(probs) != 0 {
		t.Fatalf("round-tripped baseline drifted: %v", probs)
	}

	// A new escape in a gated function fails.
	worse := map[string][]string{"a.go:f": {"moved to heap: y"}, "b.go:g": {"moved to heap: x"}}
	if probs := gate(worse, got); len(probs) != 1 {
		t.Fatalf("regression not caught: %v", probs)
	}
	// A fixed escape also fails (forces a conscious baseline refresh).
	better := map[string][]string{"a.go:f": {}, "b.go:g": {}}
	if probs := gate(better, got); len(probs) != 1 {
		t.Fatalf("improvement drift not caught: %v", probs)
	}
	// A new annotation fails until the baseline is regenerated.
	grown := map[string][]string{"a.go:f": {}, "b.go:g": {"moved to heap: x"}, "c.go:h": {}}
	if probs := gate(grown, got); len(probs) != 1 {
		t.Fatalf("new annotation drift not caught: %v", probs)
	}
	// A removed annotation fails too.
	shrunk := map[string][]string{"a.go:f": {}}
	if probs := gate(shrunk, got); len(probs) != 1 {
		t.Fatalf("removed annotation drift not caught: %v", probs)
	}
}

// End to end against the real repository: the committed baseline must
// match the current tree (this is exactly what CI runs), and every
// gated function in it must be escape-free — the repo's own
// acceptance bar.
func TestRepoBaselineCleanAndCurrent(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the repo with -gcflags=-m")
	}
	pkgs := []string{
		"../../internal/core", "../../internal/tcpu", "../../internal/netsim",
		"../../internal/asic", "../../internal/endhost", "../../internal/reflex",
	}
	anns, allowed, err := collectAnnotations(pkgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(anns) == 0 {
		t.Fatal("no //alloc:free annotations found in the repo")
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir("../.."); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)
	out, err := buildDiagnostics([]string{
		"./internal/core", "./internal/tcpu", "./internal/netsim",
		"./internal/asic", "./internal/endhost", "./internal/reflex",
	})
	if err != nil {
		t.Fatal(err)
	}
	// collectAnnotations ran from tools/allocgate, so its keys carry
	// the ../../ prefix; rebuild from the repo root for stable keys.
	anns, allowed, err = collectAnnotations([]string{
		"internal/core", "internal/tcpu", "internal/netsim",
		"internal/asic", "internal/endhost", "internal/reflex",
	})
	if err != nil {
		t.Fatal(err)
	}
	state := attribute(anns, allowed, out)
	for key, msgs := range state {
		if len(msgs) != 0 {
			t.Errorf("%s: gated function allocates: %v", key, msgs)
		}
	}
	baseline, err := readBaseline("ALLOCGATE.json")
	if err != nil {
		t.Fatal(err)
	}
	if probs := gate(state, baseline); len(probs) != 0 {
		t.Errorf("tree drifted from committed baseline: %v", probs)
	}
}
