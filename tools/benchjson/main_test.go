package main

import (
	"fmt"
	"regexp"
	"strings"
	"testing"
)

// ev builds one `go test -json` line.
func ev(action, output string) string {
	b := &strings.Builder{}
	fmt.Fprintf(b, `{"Action":%q`, action)
	if output != "" {
		fmt.Fprintf(b, `,"Output":%q`, output)
	}
	b.WriteString("}\n")
	return b.String()
}

func TestConvert(t *testing.T) {
	stream := ev("start", "") +
		ev("output", "goos: linux\n") +
		ev("output", "BenchmarkFast\n") +
		ev("output", "BenchmarkFast-8   \t 1000\t  123.5 ns/op\t  64 B/op\t   2 allocs/op\n") +
		ev("output", "BenchmarkNoMem\n") +
		ev("output", "BenchmarkNoMem-8  \t  500\t 2000 ns/op\n") +
		ev("pass", "")
	f, err := Convert(strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Results) != 2 {
		t.Fatalf("results: %+v", f.Results)
	}
	// Sorted by name.
	if f.Results[0].Name != "BenchmarkFast" || f.Results[1].Name != "BenchmarkNoMem" {
		t.Fatalf("order: %+v", f.Results)
	}
	r := f.Results[0]
	if r.Iterations != 1000 || r.NsPerOp != 123.5 || r.BytesPerOp != 64 || r.AllocsPerOp != 2 {
		t.Fatalf("parsed %+v", r)
	}
	if f.Results[1].BytesPerOp != 0 || f.Results[1].AllocsPerOp != 0 {
		t.Fatalf("no-benchmem result grew memory fields: %+v", f.Results[1])
	}
	if f.GoVersion == "" || f.GOOS == "" || f.GOARCH == "" {
		t.Fatalf("environment stamp missing: %+v", f)
	}
}

// TestConvertSplitLinesAndGroups mirrors real `go test -json` quirks:
// result lines split across output events at a flush boundary, and
// parent benchmarks that only group sub-benchmarks (they announce
// themselves but never emit a result of their own).
func TestConvertSplitLinesAndGroups(t *testing.T) {
	stream := ev("output", "BenchmarkFig2\n") +
		ev("output", "BenchmarkFig2/rcpstar\n") +
		ev("output", "BenchmarkFig2/rcpstar           \t") +
		ev("output", "       1\t   8872312 ns/op\t 1584832 B/op\t   49037 allocs/op\n") +
		ev("pass", "")
	f, err := Convert(strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Results) != 1 || f.Results[0].Name != "BenchmarkFig2/rcpstar" {
		t.Fatalf("results: %+v", f.Results)
	}
	if f.Results[0].NsPerOp != 8872312 || f.Results[0].AllocsPerOp != 49037 {
		t.Fatalf("split-line parse: %+v", f.Results[0])
	}
}

func TestConvertRejectsEmpty(t *testing.T) {
	stream := ev("start", "") + ev("output", "ok  \trepro\t0.01s\n") + ev("pass", "")
	if _, err := Convert(strings.NewReader(stream)); err == nil {
		t.Fatal("a stream with no results passed")
	}
}

func TestConvertRejectsStartWithoutResult(t *testing.T) {
	stream := ev("start", "") +
		ev("output", "BenchmarkHung\n") +
		ev("output", "BenchmarkDone\n") +
		ev("output", "BenchmarkDone-8 \t 10\t 5 ns/op\n") +
		ev("pass", "")
	_, err := Convert(strings.NewReader(stream))
	if err == nil || !strings.Contains(err.Error(), "BenchmarkHung") {
		t.Fatalf("missing-result benchmark not caught: %v", err)
	}
}

func TestConvertRejectsFailure(t *testing.T) {
	stream := ev("output", "BenchmarkX\n") +
		ev("output", "BenchmarkX-8 \t 10\t 5 ns/op\n") +
		ev("fail", "")
	if _, err := Convert(strings.NewReader(stream)); err == nil {
		t.Fatal("failed run accepted")
	}
}

func TestConvertRejectsNonJSON(t *testing.T) {
	if _, err := Convert(strings.NewReader("BenchmarkX-8 10 5 ns/op\n")); err == nil {
		t.Fatal("plain bench output accepted as a -json stream")
	}
}

func TestFilter(t *testing.T) {
	f := &File{GoVersion: "go1.x", GOOS: "linux", GOARCH: "amd64", Results: []Result{
		{Name: "BenchmarkPipelineTelemetry/disabled", Iterations: 1, NsPerOp: 1},
		{Name: "BenchmarkTCPU/interpret", Iterations: 1, NsPerOp: 1},
		{Name: "BenchmarkTCPU/compiled", Iterations: 1, NsPerOp: 1},
	}}
	sub := f.Filter(regexp.MustCompile(`^BenchmarkTCPU/`))
	if len(sub.Results) != 2 {
		t.Fatalf("filtered: %+v", sub.Results)
	}
	for _, r := range sub.Results {
		if !strings.HasPrefix(r.Name, "BenchmarkTCPU/") {
			t.Fatalf("leaked result %q", r.Name)
		}
	}
	if sub.GoVersion != f.GoVersion || sub.GOOS != f.GOOS || sub.GOARCH != f.GOARCH {
		t.Fatalf("environment stamp not preserved: %+v", sub)
	}
	if empty := f.Filter(regexp.MustCompile(`NoSuchBench`)); len(empty.Results) != 0 {
		t.Fatalf("empty filter returned %+v", empty.Results)
	}
}
