// Command benchjson converts a `go test -json -bench` stream into a
// compact, sorted benchmark results file (BENCH_obs.json by default),
// so the repository can commit a measured perf trajectory and diff it
// across PRs.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem -json . | benchjson [-o FILE] [-extra FILE=REGEX]...
//	benchjson [-o FILE] [-extra FILE=REGEX]... bench.jsonl
//	benchjson -validate FILE
//
// Each -extra FILE=REGEX writes an additional artifact holding only the
// results whose name matches REGEX, carved out of the same run — so one
// benchmark invocation can maintain several committed trajectories
// (e.g. BENCH_tcpu.json for the TCPU execution-path benchmarks next to
// the full BENCH_obs.json).
//
// The tool is strict by design: it exits non-zero if the stream
// contains a test failure, if any benchmark announced itself but never
// produced a result line (a crash or a hang would look exactly like
// that), or if no benchmark produced a result at all — an empty file
// must never pass for a measurement.  The same rule applies per -extra:
// a REGEX that selects nothing fails the run.  -validate re-checks a
// previously written file (CI uses it to prove the committed artifact
// parses and is non-empty).
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// testEvent is the subset of `go test -json` events we care about.
type testEvent struct {
	Action string `json:"Action"`
	Test   string `json:"Test"`
	Output string `json:"Output"`
}

// Result is one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// File is the committed artifact: environment stamp plus sorted results.
type File struct {
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	Results   []Result `json:"results"`
}

// Filter returns a copy of the artifact holding only the results whose
// name matches re, preserving order and the environment stamp.
func (f *File) Filter(re *regexp.Regexp) *File {
	sub := &File{GoVersion: f.GoVersion, GOOS: f.GOOS, GOARCH: f.GOARCH}
	for _, r := range f.Results {
		if re.MatchString(r.Name) {
			sub.Results = append(sub.Results, r)
		}
	}
	return sub
}

// A benchmark announces itself as a bare "BenchmarkX" line, then emits
// "BenchmarkX-8  <iters>  <ns> ns/op [<b> B/op] [<allocs> allocs/op]"
// per completed run.
var (
	startRe  = regexp.MustCompile(`^(Benchmark\S+)$`)
	resultRe = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)
)

// extraOut is one -extra FILE=REGEX carve-out.
type extraOut struct {
	path string
	re   *regexp.Regexp
}

const usage = "usage: benchjson [-o FILE] [-extra FILE=REGEX]... [input.jsonl] | benchjson -validate FILE"

func main() {
	outPath := "BENCH_obs.json"
	validate := ""
	var extras []extraOut
	args := os.Args[1:]
	for len(args) > 0 && strings.HasPrefix(args[0], "-") {
		switch {
		case args[0] == "-o" && len(args) >= 2:
			outPath = args[1]
			args = args[2:]
		case args[0] == "-extra" && len(args) >= 2:
			path, expr, ok := strings.Cut(args[1], "=")
			if !ok || path == "" || expr == "" {
				fmt.Fprintf(os.Stderr, "benchjson: -extra wants FILE=REGEX, got %q\n", args[1])
				os.Exit(2)
			}
			re, err := regexp.Compile(expr)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: -extra %s: %v\n", path, err)
				os.Exit(2)
			}
			extras = append(extras, extraOut{path: path, re: re})
			args = args[2:]
		case args[0] == "-validate" && len(args) >= 2:
			validate = args[1]
			args = args[2:]
		default:
			fmt.Fprintln(os.Stderr, usage)
			os.Exit(2)
		}
	}

	if validate != "" {
		if err := validateFile(validate); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", validate, err)
			os.Exit(1)
		}
		return
	}

	in := io.Reader(os.Stdin)
	if len(args) == 1 {
		f, err := os.Open(args[0])
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	} else if len(args) > 1 {
		fmt.Fprintln(os.Stderr, usage)
		os.Exit(2)
	}

	out, err := Convert(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	writeArtifact(outPath, out)
	for _, ex := range extras {
		sub := out.Filter(ex.re)
		if len(sub.Results) == 0 {
			fmt.Fprintf(os.Stderr, "benchjson: -extra %s: regexp %q matched no results\n",
				ex.path, ex.re)
			os.Exit(1)
		}
		writeArtifact(ex.path, sub)
	}
}

func writeArtifact(path string, f *File) {
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: wrote %d results to %s\n", len(f.Results), path)
}

// Convert parses a `go test -json` stream and returns the artifact, or
// an error when the stream does not represent a complete, passing run.
func Convert(in io.Reader) (*File, error) {
	started := map[string]bool{}
	results := map[string]Result{}
	failed := false

	handleLine := func(text string) {
		text = strings.TrimSpace(text)
		if m := resultRe.FindStringSubmatch(text); m != nil {
			r := Result{Name: m[1]}
			r.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
			r.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
			if m[4] != "" {
				r.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
			}
			if m[5] != "" {
				r.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
			}
			results[r.Name] = r
			return
		}
		if m := startRe.FindStringSubmatch(text); m != nil {
			started[m[1]] = true
		}
	}

	// A result line is often split across output events at a flush
	// boundary ("BenchmarkX \t" then "1\t 123 ns/op\n"), so reassemble
	// the per-test output stream and only act on complete lines.
	pending := map[string]string{}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev testEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, fmt.Errorf("not a `go test -json` stream: %v", err)
		}
		if ev.Action == "fail" {
			failed = true
		}
		if ev.Action != "output" {
			continue
		}
		buf := pending[ev.Test] + ev.Output
		for {
			nl := strings.IndexByte(buf, '\n')
			if nl < 0 {
				break
			}
			handleLine(buf[:nl])
			buf = buf[nl+1:]
		}
		pending[ev.Test] = buf
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, buf := range pending {
		if buf != "" {
			handleLine(buf)
		}
	}

	if failed {
		return nil, fmt.Errorf("the benchmark run reported a failure")
	}
	// A name that only groups sub-benchmarks (BenchmarkFig2 with
	// BenchmarkFig2/rcpstar under it) announces itself but never emits
	// a result of its own; only leaves must produce one.
	var missing []string
	for name := range started {
		if _, ok := results[name]; ok {
			continue
		}
		parent := false
		for other := range started {
			if strings.HasPrefix(other, name+"/") {
				parent = true
				break
			}
		}
		if !parent {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return nil, fmt.Errorf("benchmarks started but produced no result: %s",
			strings.Join(missing, ", "))
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("no benchmark results in the stream")
	}

	out := &File{GoVersion: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH}
	for _, r := range results {
		out.Results = append(out.Results, r)
	}
	sort.Slice(out.Results, func(i, j int) bool {
		return out.Results[i].Name < out.Results[j].Name
	})
	return out, nil
}

// validateFile checks a committed artifact parses and is non-empty.
func validateFile(path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var f File
	if err := json.Unmarshal(b, &f); err != nil {
		return err
	}
	if len(f.Results) == 0 {
		return fmt.Errorf("no results")
	}
	for _, r := range f.Results {
		if r.Name == "" || r.Iterations <= 0 || r.NsPerOp <= 0 {
			return fmt.Errorf("implausible result %+v", r)
		}
	}
	fmt.Printf("benchjson: %s ok (%d results, %s %s/%s)\n",
		path, len(f.Results), f.GoVersion, f.GOOS, f.GOARCH)
	return nil
}
