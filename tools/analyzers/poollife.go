package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolLife returns the pooled-packet lifecycle analyzer suite.
func PoolLife() []*Analyzer { return []*Analyzer{PoolLifeAnalyzer} }

// PoolLifeAnalyzer enforces the ownership rules of internal/core's
// packet pool (see pool.go) by intraprocedural dataflow over the
// variables that pooled packets flow through:
//
//   - use-after-Recycle: once a variable is recycled, any further use
//     of it on a path reaching that use is a fault — the packet may
//     already be another incarnation.
//   - double-Recycle: recycling the same variable twice on one path
//     hands the pool an aliased slot.
//   - retention-without-Adopt: a value drawn from ClonePooled that is
//     stored into a long-lived structure (a field, a map or slice
//     element, an append, a channel send, a closure capture) while
//     still pool-owned can be recycled under the referent; Adopt first.
//   - recycle-after-shallow-copy: after `c := *p`, c aliases p's
//     buffers, so p must be abandoned to the GC, never recycled.
//
// The analysis is a forward may-analysis over each function body:
// branches merge by flag union, loop bodies are traversed twice so
// loop-carried states (recycle at the bottom, use at the top) are
// seen, and early exits (return, break, continue, panic) terminate
// their path so the common `if dead { pkt.Recycle(); return }` shape
// stays clean.  Like the determinism linters it relies only on locally
// inferable facts — the Recycle/Adopt/ClonePooled method names on
// plain identifiers — so it needs no cross-package type information.
// Sanctioned violations (e.g. the egress queue retaining fabric-owned
// packets it will recycle itself) carry //lint:allow poollife.
var PoolLifeAnalyzer = &Analyzer{
	Name: "poollife",
	Doc:  "enforce pooled-packet ownership: no use after Recycle, no double Recycle, Adopt before retaining, abandon after shallow copy",
	Run: func(p *Pass) {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				fd, ok := n.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					return true
				}
				pl := &poolLife{pass: p, seen: make(map[token.Pos]bool)}
				pl.stmts(fd.Body.List, make(poolState))
				return true // nested FuncLits are handled as captures
			})
		}
	},
}

// poolFlags is the abstract state of one variable.
type poolFlags uint8

const (
	flagPooled   poolFlags = 1 << iota // from ClonePooled, not yet adopted/recycled
	flagRecycled                       // Recycle called on some path reaching here
	flagAliased                        // a shallow copy (*v) was taken
)

// poolState maps each tracked local to its flags.  States are small
// (at most a handful of packet variables per function), so copying at
// branches is cheap.
type poolState map[types.Object]poolFlags

func (s poolState) clone() poolState {
	c := make(poolState, len(s))
	for k, v := range s { //lint:allow maporder (copy; order has no effect)
		c[k] = v
	}
	return c
}

// merge unions other into s: a flag holds after a join if it held on
// any incoming path (may-analysis).
func (s poolState) merge(other poolState) {
	for k, v := range other { //lint:allow maporder (flag union; order has no effect)
		s[k] |= v
	}
}

type poolLife struct {
	pass *Pass
	// seen dedupes reports: loop bodies are analyzed twice, and a
	// second traversal must not double-report the same position.
	seen map[token.Pos]bool
}

func (pl *poolLife) report(pos token.Pos, format string, args ...any) {
	if pl.seen[pos] {
		return
	}
	pl.seen[pos] = true
	pl.pass.Report(pos, format, args...)
}

// obj resolves an expression to the object of a plain identifier, the
// only values the analysis tracks.
func (pl *poolLife) obj(e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if o := pl.pass.Info.Uses[id]; o != nil {
		if _, isVar := o.(*types.Var); isVar {
			return o
		}
		return nil
	}
	if o := pl.pass.Info.Defs[id]; o != nil {
		if _, isVar := o.(*types.Var); isVar {
			return o
		}
	}
	return nil
}

// stmts runs the analysis over a statement list, mutating state in
// place.  It returns true when every path through the list terminates
// (return, branch, panic), meaning state does not flow past the list.
func (pl *poolLife) stmts(list []ast.Stmt, state poolState) bool {
	for _, st := range list {
		if pl.stmt(st, state) {
			return true
		}
	}
	return false
}

// stmt analyzes one statement; the bool result reports termination.
func (pl *poolLife) stmt(st ast.Stmt, state poolState) bool {
	switch s := st.(type) {
	case *ast.ExprStmt:
		pl.expr(s.X, state)
	case *ast.AssignStmt:
		pl.assign(s, state)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, v := range vs.Values {
					pl.expr(v, state)
				}
				for i, name := range vs.Names {
					if o := pl.obj(name); o != nil {
						if len(vs.Values) == len(vs.Names) && pl.isClonePooled(vs.Values[i]) {
							state[o] = flagPooled
						} else {
							delete(state, o)
						}
					}
				}
			}
		}
	case *ast.IfStmt:
		if s.Init != nil {
			pl.stmt(s.Init, state)
		}
		pl.expr(s.Cond, state)
		thenState := state.clone()
		thenDone := pl.stmts(s.Body.List, thenState)
		elseState := state.clone()
		elseDone := false
		if s.Else != nil {
			elseDone = pl.stmt(s.Else, elseState)
		}
		switch {
		case thenDone && elseDone:
			return true
		case thenDone:
			replace(state, elseState)
		case elseDone:
			replace(state, thenState)
		default:
			replace(state, thenState)
			state.merge(elseState)
		}
	case *ast.BlockStmt:
		return pl.stmts(s.List, state)
	case *ast.ForStmt:
		if s.Init != nil {
			pl.stmt(s.Init, state)
		}
		if s.Cond != nil {
			pl.expr(s.Cond, state)
		}
		pl.loopBody(s.Body, s.Post, state)
	case *ast.RangeStmt:
		pl.expr(s.X, state)
		if o := pl.obj(s.Value); o != nil {
			delete(state, o) // fresh binding per iteration
		}
		pl.loopBody(s.Body, nil, state)
	case *ast.SwitchStmt:
		if s.Init != nil {
			pl.stmt(s.Init, state)
		}
		if s.Tag != nil {
			pl.expr(s.Tag, state)
		}
		pl.caseClauses(s.Body, state)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			pl.stmt(s.Init, state)
		}
		pl.caseClauses(s.Body, state)
	case *ast.SelectStmt:
		pl.caseClauses(s.Body, state)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			pl.expr(e, state)
		}
		return true
	case *ast.BranchStmt:
		// break/continue/goto leave the current path; the loop's
		// second traversal approximates where it lands.
		return true
	case *ast.SendStmt:
		pl.expr(s.Chan, state)
		pl.expr(s.Value, state)
		if o := pl.obj(s.Value); o != nil && state[o]&flagPooled != 0 {
			pl.report(s.Value.Pos(), "pooled packet %s sent on a channel without Adopt; the fabric may recycle it under the receiver", nameOf(s.Value))
		}
	case *ast.DeferStmt:
		pl.expr(s.Call, state)
	case *ast.GoStmt:
		pl.expr(s.Call, state)
	case *ast.LabeledStmt:
		return pl.stmt(s.Stmt, state)
	case *ast.IncDecStmt:
		pl.expr(s.X, state)
	case *ast.EmptyStmt:
	default:
		// Conservatively scan any other statement's expressions.
		ast.Inspect(st, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				pl.expr(e, state)
				return false
			}
			return true
		})
	}
	return false
}

// loopBody analyzes a loop body twice: the second pass starts from the
// state merged across the first, so loop-carried violations (recycle
// at the bottom of an iteration, use at the top of the next) surface.
// Reports are deduplicated, so the double traversal never repeats a
// finding.
func (pl *poolLife) loopBody(body *ast.BlockStmt, post ast.Stmt, state poolState) {
	first := state.clone()
	if !pl.stmts(body.List, first) && post != nil {
		pl.stmt(post, first)
	}
	state.merge(first)
	second := state.clone()
	if !pl.stmts(body.List, second) && post != nil {
		pl.stmt(post, second)
	}
	state.merge(second)
}

// caseClauses analyzes each clause of a switch/select from the entry
// state and merges the fall-out states of non-terminating clauses.
func (pl *poolLife) caseClauses(body *ast.BlockStmt, state poolState) {
	entry := state.clone()
	for _, c := range body.List {
		var list []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			for _, e := range cc.List {
				pl.expr(e, entry)
			}
			list = cc.Body
		case *ast.CommClause:
			if cc.Comm != nil {
				pl.stmt(cc.Comm, entry)
			}
			list = cc.Body
		}
		cs := entry.clone()
		if !pl.stmts(list, cs) {
			state.merge(cs)
		}
	}
}

// assign applies an assignment: RHS effects first, then LHS kills,
// retention checks, and aliasing marks.
func (pl *poolLife) assign(s *ast.AssignStmt, state poolState) {
	for _, r := range s.Rhs {
		pl.expr(r, state)
	}
	oneToOne := len(s.Lhs) == len(s.Rhs)
	for i, l := range s.Lhs {
		// Retaining a still-pooled value: x.f = p, m[k] = p.
		if oneToOne {
			r := s.Rhs[i]
			if o := pl.obj(r); o != nil && state[o]&flagPooled != 0 {
				switch l.(type) {
				case *ast.SelectorExpr:
					pl.report(r.Pos(), "pooled packet %s stored into a field without Adopt; the fabric may recycle it under the referent", nameOf(r))
				case *ast.IndexExpr:
					pl.report(r.Pos(), "pooled packet %s stored into a map or slice element without Adopt; the fabric may recycle it under the referent", nameOf(r))
				}
			}
		}
		o := pl.obj(l)
		if o == nil {
			continue
		}
		// A plain-identifier LHS re-binds the variable: derive its new
		// state from the matching RHS when the assignment is 1:1.
		switch {
		case oneToOne && pl.isClonePooled(s.Rhs[i]):
			state[o] = flagPooled
		case oneToOne && isDeref(s.Rhs[i]):
			// x = *p: x is a shallow copy; p's buffers are now aliased.
			if src := pl.derefObj(s.Rhs[i]); src != nil {
				state[src] |= flagAliased
			}
			delete(state, o)
		default:
			delete(state, o)
		}
	}
}

// expr scans one expression for lifecycle events and uses.
func (pl *poolLife) expr(e ast.Expr, state poolState) {
	if e == nil {
		return
	}
	switch x := e.(type) {
	case *ast.CallExpr:
		// Method events on plain identifiers.
		if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
			if recv := pl.obj(sel.X); recv != nil {
				switch sel.Sel.Name {
				case "Recycle":
					fl := state[recv]
					switch {
					case fl&flagRecycled != 0:
						pl.report(x.Pos(), "%s recycled twice; the second Recycle hands the pool an aliased slot", nameOf(sel.X))
					case fl&flagAliased != 0:
						pl.report(x.Pos(), "%s recycled after a shallow copy aliased its buffers; abandon the original to the GC instead", nameOf(sel.X))
					}
					state[recv] = (fl | flagRecycled) &^ flagPooled
					for _, a := range x.Args {
						pl.expr(a, state)
					}
					return
				case "Adopt":
					pl.useIdent(sel.X, state)
					state[recv] = 0
					return
				case "ClonePooled", "Clone", "Pooled", "WireLen", "PayloadLen", "Serialize":
					// Reads of the receiver: plain uses.
					pl.useIdent(sel.X, state)
					for _, a := range x.Args {
						pl.expr(a, state)
					}
					return
				}
			}
		}
		// append(s, p) retains p in a slice.
		if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "append" && pl.obj(id) == nil && len(x.Args) > 1 {
			for _, a := range x.Args[1:] {
				if o := pl.obj(a); o != nil && state[o]&flagPooled != 0 {
					pl.report(a.Pos(), "pooled packet %s appended to a slice without Adopt; the fabric may recycle it under the referent", nameOf(a))
				}
			}
		}
		pl.expr(x.Fun, state)
		for _, a := range x.Args {
			pl.expr(a, state)
		}
	case *ast.FuncLit:
		// A closure capturing a tracked variable outlives the current
		// event: a still-pooled capture is a retention, and captures of
		// recycled variables are uses after death.
		ast.Inspect(x.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if o := pl.pass.Info.Uses[id]; o != nil {
				if fl, tracked := state[o]; tracked {
					if fl&flagPooled != 0 {
						pl.report(id.Pos(), "pooled packet %s captured by a closure without Adopt; the closure may run after the fabric recycles it", id.Name)
						state[o] &^= flagPooled // one report per capture site
					}
					if fl&flagRecycled != 0 {
						pl.report(id.Pos(), "use of %s after Recycle", id.Name)
					}
				}
			}
			return true
		})
	case *ast.StarExpr:
		// *p in an expression: a shallow copy of the pointee.
		if o := pl.obj(x.X); o != nil {
			pl.useIdent(x.X, state)
			state[o] |= flagAliased
			return
		}
		pl.expr(x.X, state)
	case *ast.UnaryExpr:
		pl.expr(x.X, state)
	case *ast.BinaryExpr:
		pl.expr(x.X, state)
		pl.expr(x.Y, state)
	case *ast.ParenExpr:
		pl.expr(x.X, state)
	case *ast.SelectorExpr:
		pl.useIdent(x.X, state)
		pl.expr(x.X, state)
	case *ast.IndexExpr:
		pl.expr(x.X, state)
		pl.expr(x.Index, state)
	case *ast.SliceExpr:
		pl.expr(x.X, state)
		pl.expr(x.Low, state)
		pl.expr(x.High, state)
		pl.expr(x.Max, state)
	case *ast.TypeAssertExpr:
		pl.expr(x.X, state)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				pl.expr(kv.Value, state)
				if o := pl.obj(kv.Value); o != nil && state[o]&flagPooled != 0 {
					pl.report(kv.Value.Pos(), "pooled packet %s stored into a composite literal without Adopt; the fabric may recycle it under the referent", nameOf(kv.Value))
				}
				continue
			}
			pl.expr(el, state)
		}
	case *ast.Ident:
		pl.useIdent(x, state)
	}
}

// useIdent reports a use of a recycled variable.
func (pl *poolLife) useIdent(e ast.Expr, state poolState) {
	id, ok := e.(*ast.Ident)
	if !ok {
		return
	}
	if o := pl.obj(id); o != nil && state[o]&flagRecycled != 0 {
		pl.report(id.Pos(), "use of %s after Recycle", id.Name)
	}
}

// isClonePooled reports whether e is a call x.ClonePooled().
func (pl *poolLife) isClonePooled(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "ClonePooled"
}

func isDeref(e ast.Expr) bool {
	_, ok := e.(*ast.StarExpr)
	return ok
}

func (pl *poolLife) derefObj(e ast.Expr) types.Object {
	st, ok := e.(*ast.StarExpr)
	if !ok {
		return nil
	}
	return pl.obj(st.X)
}

func nameOf(e ast.Expr) string {
	if id, ok := e.(*ast.Ident); ok {
		return id.Name
	}
	return "value"
}

// replace overwrites dst's contents with src's.
func replace(dst, src poolState) {
	for k := range dst { //lint:allow maporder (set replacement; order has no effect)
		delete(dst, k)
	}
	for k, v := range src { //lint:allow maporder (set replacement; order has no effect)
		dst[k] = v
	}
}
