// Command poollifelint runs the pooled-packet lifecycle analyzer over
// package directories and exits non-zero when any finding survives
// //lint:allow poollife suppression.
//
// Usage:
//
//	poollifelint DIR...
package main

import (
	"fmt"
	"os"

	"repro/tools/analyzers"
)

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		fmt.Fprintln(os.Stderr, "usage: poollifelint DIR...")
		os.Exit(2)
	}
	suite := analyzers.PoolLife()
	bad := false
	for _, dir := range dirs {
		findings, err := analyzers.Dir(dir, suite)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		for _, f := range findings {
			fmt.Println(f)
			bad = true
		}
	}
	if bad {
		os.Exit(1)
	}
}
