// Command determinismlint runs the repository's determinism analyzers
// (notime, norand, maporder) over package directories and exits
// non-zero when any finding survives //lint:allow suppression.
//
// Usage:
//
//	determinismlint DIR...
package main

import (
	"fmt"
	"os"

	"repro/tools/analyzers"
)

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		fmt.Fprintln(os.Stderr, "usage: determinismlint DIR...")
		os.Exit(2)
	}
	suite := analyzers.Determinism()
	bad := false
	for _, dir := range dirs {
		findings, err := analyzers.Dir(dir, suite)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		for _, f := range findings {
			fmt.Println(f)
			bad = true
		}
	}
	if bad {
		os.Exit(1)
	}
}
