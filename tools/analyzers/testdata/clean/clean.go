// Package clean is a lint fixture that stays within the determinism
// rules: seeded randomness, suppressed or sorted map iteration, no
// wall clock.
package clean

import (
	"math/rand"
	"sort"
)

func Sanctioned(m map[string]int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	_ = rng.Intn(10)

	keys := make([]string, 0, len(m))
	for k := range m { //lint:allow maporder (sorted below)
		keys = append(keys, k)
	}
	sort.Strings(keys)

	//lint:allow maporder directive on the preceding line also counts
	for k := range m {
		_ = k
	}
	return keys
}
