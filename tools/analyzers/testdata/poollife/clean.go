package poollife

// Negative cases: the legal lifecycle shapes fabric code actually
// uses.  None of these may produce a finding.

// The canonical forward path: clone, use, recycle at the death point.
func cloneForwardRecycle(src *Packet) int {
	c := src.ClonePooled()
	n := c.WireLen()
	c.Recycle()
	return n
}

// Early-exit recycle: the recycling branch leaves the function, so the
// uses after the if are only reachable with a live packet.
func recycleThenReturn(src *Packet, dead bool) int {
	c := src.ClonePooled()
	if dead {
		c.Recycle()
		return 0
	}
	n := c.WireLen()
	c.Recycle()
	return n
}

// Adopt severs pool ownership; retaining afterwards is the sanctioned
// way hosts keep delivered packets.
func adoptThenRetain(q *queue, src *Packet) {
	p := src.ClonePooled()
	p.Adopt()
	q.head = p
	q.items = append(q.items, p)
	q.byID[0] = p
}

// Parameters are not locally proven pooled: the fabric's queues retain
// packets whose death points they themselves own, and the analyzer
// must not second-guess that contract across function boundaries.
func unknownProvenance(q *queue, p *Packet) {
	q.items = append(q.items, p)
	q.head = p
}

// The sanctioned shallow-copy shape: adopt the copy, abandon the
// original to the GC, never recycle it.
func shallowAbandon(src *Packet) *Packet {
	c := src.ClonePooled()
	sc := *c
	sc.Adopt()
	return &sc
}

// Re-binding a variable to a fresh clone clears its recycled state.
func rebindAfterRecycle(src *Packet) {
	c := src.ClonePooled()
	c.Recycle()
	c = src.ClonePooled()
	_ = c.WireLen()
	c.Recycle()
}

// A per-iteration clone/recycle pair is clean: the fresh binding at
// the top of each iteration resets the state.
func loopCloneRecycle(src *Packet) {
	for i := 0; i < 4; i++ {
		c := src.ClonePooled()
		_ = c.WireLen()
		c.Recycle()
	}
}

// Recycling distinct clones held in distinct variables is clean.
func twoClones(src *Packet) {
	a := src.ClonePooled()
	b := src.ClonePooled()
	_ = a.WireLen()
	_ = b.WireLen()
	a.Recycle()
	b.Recycle()
}
