// Package poollife is the testdata fixture for the poollife analyzer:
// a self-contained stand-in for internal/core's pooled Packet and the
// structures fabric code retains packets in.  The analyzer keys off
// the ClonePooled/Recycle/Adopt method names on plain identifiers, so
// the fixture needs no dependency on the real package.
package poollife

type Packet struct {
	Len     int
	Payload []byte
}

func (p *Packet) ClonePooled() *Packet { return &Packet{Len: p.Len} }
func (p *Packet) Recycle()             {}
func (p *Packet) Adopt()               {}
func (p *Packet) WireLen() int         { return p.Len }
func (p *Packet) Serialize() []byte    { return p.Payload }

type queue struct {
	head  *Packet
	items []*Packet
	byID  map[int]*Packet
	ch    chan *Packet
}
