package poollife

// Positive cases: every rule the poollife analyzer enforces, one
// function per shape.  Each violating line carries a want comment
// naming a substring of the expected finding; the test harness matches
// findings against these line by line.

func useAfterRecycle(src *Packet) {
	c := src.ClonePooled()
	c.Recycle()
	_ = c.WireLen() // want "use of c after Recycle"
}

func fieldAfterRecycle(src *Packet) int {
	c := src.ClonePooled()
	c.Recycle()
	return c.Len // want "use of c after Recycle"
}

func doubleRecycle(src *Packet) {
	c := src.ClonePooled()
	c.Recycle()
	c.Recycle() // want "recycled twice"
}

// A recycle on one branch poisons the merged state: the use after the
// if is reachable through the recycling path.
func branchRecycle(src *Packet, drop bool) {
	c := src.ClonePooled()
	if drop {
		c.Recycle()
	}
	_ = c.Serialize() // want "use of c after Recycle"
}

// Loop-carried: the recycle at the bottom of one iteration reaches the
// use at the top of the next, and the second recycle is a double.
func loopRecycle(src *Packet) {
	c := src.ClonePooled()
	for i := 0; i < 2; i++ {
		_ = c.WireLen() // want "use of c after Recycle"
		c.Recycle()     // want "recycled twice"
	}
}

func retainField(q *queue, src *Packet) {
	p := src.ClonePooled()
	q.head = p // want "stored into a field without Adopt"
}

func retainMap(q *queue, src *Packet) {
	p := src.ClonePooled()
	q.byID[0] = p // want "stored into a map or slice element without Adopt"
}

func retainAppend(q *queue, src *Packet) {
	p := src.ClonePooled()
	q.items = append(q.items, p) // want "appended to a slice without Adopt"
}

func retainSend(q *queue, src *Packet) {
	p := src.ClonePooled()
	q.ch <- p // want "sent on a channel without Adopt"
}

func retainClosure(src *Packet) func() int {
	p := src.ClonePooled()
	return func() int {
		return p.Len // want "captured by a closure without Adopt"
	}
}

func retainLiteral(src *Packet) *queue {
	p := src.ClonePooled()
	return &queue{head: p} // want "stored into a composite literal without Adopt"
}

// Recycling the original after a shallow copy aliased its buffers: the
// copy keeps using memory the pool now owns.
func shallowRecycle(src *Packet) {
	c := src.ClonePooled()
	sc := *c
	sc.Adopt()
	c.Recycle() // want "recycled after a shallow copy"
}
