package poollife

// Suppressed cases: real violations silenced by //lint:allow poollife,
// the escape hatch for sanctioned exceptions.  None of these may
// survive to a finding.

func suppressedRetain(q *queue, src *Packet) {
	p := src.ClonePooled()
	q.head = p //lint:allow poollife (queue owns the death point and recycles it)
}

func suppressedUse(src *Packet) {
	c := src.ClonePooled()
	c.Recycle()
	//lint:allow poollife (diagnostic read of a dead packet)
	_ = c.WireLen()
}

func suppressedDouble(src *Packet) {
	c := src.ClonePooled()
	c.Recycle()
	c.Recycle() //lint:allow poollife (idempotent by construction here)
}
