// Package bad is a lint fixture: every statement below violates one
// determinism analyzer.
package bad

import (
	"fmt"
	"math/rand"
	"time"
)

func Violations(m map[string]int) {
	fmt.Println(time.Now())              // notime
	fmt.Println(time.Since(time.Time{})) // notime
	fmt.Println(rand.Intn(10))           // norand
	rand.Shuffle(3, func(i, j int) {})   // norand
	for k, v := range m {                // maporder
		fmt.Println(k, v)
	}
}
