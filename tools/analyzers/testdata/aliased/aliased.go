// Package aliased is a lint fixture proving the analyzers resolve
// imports through the type-checker, not by spelling: an aliased time
// import is still caught, and a local struct named time is not.
package aliased

import (
	clock "time"
)

type fakeTime struct{}

func (fakeTime) Now() int { return 0 }

func Aliased() {
	var time fakeTime
	_ = time.Now()  // fine: not the time package
	_ = clock.Now() // notime, despite the alias
}
