// Package analyzers is a minimal, dependency-free reimplementation of
// the go/analysis pattern: named analyzers walk type-annotated syntax
// trees and report findings with positions.  The real framework lives
// in golang.org/x/tools, which this repository deliberately does not
// depend on; the subset here — parse a package directory, best-effort
// type-check it, run analyzers, honor //lint:allow suppressions — is
// all the determinism linters need.
//
// Type information is best-effort: imports resolve to empty stub
// packages and type errors are ignored, so analyzers must only rely on
// facts that are locally inferable (which package an identifier's
// selector refers to, the types of locally declared values).  That is
// exactly enough to recognize time.Now calls, math/rand global
// functions and iteration over locally typed maps.
//
// A finding on some line is suppressed by the directive
//
//	//lint:allow <analyzer> [reason]
//
// placed on the same line or the line immediately above.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"sort"
	"strings"
)

// Finding is one analyzer report.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Msg      string
}

// String formats the finding as "file:line:col: analyzer: msg".
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Msg)
}

// Pass carries one package's worth of state to an analyzer's Run.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Info  *types.Info

	// Report records a finding at pos.  Suppression is applied by the
	// driver, not the analyzer.
	Report func(pos token.Pos, format string, args ...any)
}

// Analyzer is a named check over one package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// stubImporter satisfies every import with an empty package, so
// type-checking proceeds (with errors we ignore) even though no export
// data is available.
type stubImporter struct {
	pkgs map[string]*types.Package
}

func (si *stubImporter) Import(path string) (*types.Package, error) {
	if p, ok := si.pkgs[path]; ok {
		return p, nil
	}
	name := path
	if i := strings.LastIndexAny(path, "/"); i >= 0 {
		name = path[i+1:]
	}
	p := types.NewPackage(path, name)
	p.MarkComplete()
	si.pkgs[path] = p
	return p, nil
}

// Dir parses the non-test Go files of one package directory, runs every
// analyzer and returns the unsuppressed findings sorted by position.
func Dir(dir string, as []*Analyzer) ([]Finding, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("analyzers: parsing %s: %w", dir, err)
	}

	var findings []Finding
	for _, name := range sortedKeys(pkgs) {
		pkg := pkgs[name]
		files := make([]*ast.File, 0, len(pkg.Files))
		for _, fname := range sortedKeys(pkg.Files) {
			files = append(files, pkg.Files[fname])
		}

		info := &types.Info{
			Types: make(map[ast.Expr]types.TypeAndValue),
			Defs:  make(map[*ast.Ident]types.Object),
			Uses:  make(map[*ast.Ident]types.Object),
		}
		conf := types.Config{
			Importer: &stubImporter{pkgs: make(map[string]*types.Package)},
			Error:    func(error) {}, // best-effort: stub imports guarantee errors
		}
		_, _ = conf.Check(name, fset, files, info)

		allow := collectAllows(fset, files)
		for _, a := range as {
			a.Run(&Pass{
				Fset:  fset,
				Files: files,
				Info:  info,
				Report: func(pos token.Pos, format string, args ...any) {
					p := fset.Position(pos)
					if allow.suppressed(a.Name, p) {
						return
					}
					findings = append(findings, Finding{
						Pos: p, Analyzer: a.Name, Msg: fmt.Sprintf(format, args...),
					})
				},
			})
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

func sortedKeys[M map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// allowSet records //lint:allow directives by file, line and analyzer.
type allowSet map[string]map[int]map[string]bool

func (s allowSet) suppressed(analyzer string, p token.Position) bool {
	lines := s[p.Filename]
	// Same line, or the directive on its own line directly above.
	return lines[p.Line][analyzer] || lines[p.Line-1][analyzer]
}

func collectAllows(fset *token.FileSet, files []*ast.File) allowSet {
	s := make(allowSet)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:allow")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) == 0 {
					continue
				}
				p := fset.Position(c.Pos())
				lines := s[p.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					s[p.Filename] = lines
				}
				if lines[p.Line] == nil {
					lines[p.Line] = make(map[string]bool)
				}
				lines[p.Line][fields[0]] = true
			}
		}
	}
	return s
}

// pkgFunc reports whether call is a selector call into the package with
// the given import path (alias- and shadowing-aware via the
// type-checker's Uses map), returning the selected name.
func pkgFunc(info *types.Info, call *ast.CallExpr, path string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != path {
		return "", false
	}
	return sel.Sel.Name, true
}
