package analyzers

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe matches the `// want "substring"` expectation comments in the
// poollife testdata fixtures.
var wantRe = regexp.MustCompile(`// want "([^"]+)"`)

// collectWants maps file:line to the expected finding substrings
// declared in the fixture sources.
func collectWants(t *testing.T, dir string) map[string][]string {
	t.Helper()
	wants := make(map[string][]string)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(b), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				key := fmt.Sprintf("%s:%d", path, i+1)
				wants[key] = append(wants[key], m[1])
			}
		}
	}
	return wants
}

// The want-comment suite: every finding must land on a line annotated
// with a matching `// want` comment, and every want comment must be
// satisfied by exactly one finding.  The fixture covers each rule's
// positive shape (bad.go), the legal shapes (clean.go, no wants) and
// the //lint:allow escape hatch (suppressed.go, no wants).
func TestPoolLifeWantComments(t *testing.T) {
	dir := "testdata/poollife"
	fs, err := Dir(dir, PoolLife())
	if err != nil {
		t.Fatal(err)
	}
	wants := collectWants(t, dir)

	matched := make(map[string]int)
	for _, f := range fs {
		key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
		ws := wants[key]
		ok := false
		for _, w := range ws {
			if strings.Contains(f.Msg, w) {
				ok = true
				matched[key]++
				break
			}
		}
		if !ok {
			t.Errorf("unexpected finding at %s: %s", key, f.Msg)
		}
	}
	for key, ws := range wants {
		if matched[key] != len(ws) {
			t.Errorf("%s: want %d finding(s) %q, matched %d", key, len(ws), ws, matched[key])
		}
	}
}

// Findings must be deterministic and position-sorted: two runs over
// the same fixture agree exactly (the linter gates CI, so flapping
// output would make failures undiagnosable).
func TestPoolLifeDeterministic(t *testing.T) {
	dir := "testdata/poollife"
	a, err := Dir(dir, PoolLife())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Dir(dir, PoolLife())
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("runs disagree: %d vs %d findings", len(a), len(b))
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("finding %d differs between runs:\n  %s\n  %s", i, a[i], b[i])
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i-1].Pos.Filename > a[i].Pos.Filename ||
			(a[i-1].Pos.Filename == a[i].Pos.Filename && a[i-1].Pos.Line > a[i].Pos.Line) {
			t.Fatalf("findings unsorted: %v before %v", a[i-1], a[i])
		}
	}
}

// The acceptance fixture: a copy of internal/asic with one
// pool-lifecycle violation added must fail the lint, and the pristine
// copy must pass — the analyzer works on real production code with
// stubbed imports, not just toy fixtures.
func TestAsicWithPoolLeakFails(t *testing.T) {
	src := "../../internal/asic"
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(src, name))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, name), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	fs, err := Dir(dst, PoolLife())
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		t.Fatalf("pristine asic copy flagged: %v", fs)
	}

	tainted := `package asic

import "repro/internal/core"

// leakPooled retains a pooled clone and then touches a recycled one.
func leakPooled(p *core.Packet, dst *[]*core.Packet) int {
	c := p.ClonePooled()
	*dst = append(*dst, c)
	c.Recycle()
	return c.WireLen()
}
`
	if err := os.WriteFile(filepath.Join(dst, "zz_tainted.go"), []byte(tainted), 0o644); err != nil {
		t.Fatal(err)
	}
	fs, err = Dir(dst, PoolLife())
	if err != nil {
		t.Fatal(err)
	}
	var appended, used bool
	for _, f := range fs {
		if !strings.Contains(f.Pos.Filename, "zz_tainted.go") {
			t.Errorf("finding attributed to wrong file: %v", f)
		}
		if strings.Contains(f.Msg, "appended to a slice") {
			appended = true
		}
		if strings.Contains(f.Msg, "use of c after Recycle") {
			used = true
		}
	}
	if !appended || !used {
		t.Fatalf("tainted asic not fully flagged (append=%v use=%v): %v", appended, used, fs)
	}
}

// The pool-lifecycle invariant holds on the packages that actually
// handle pooled packets; a regression here is a lifecycle bug the
// pooldebug soak would eventually hit at runtime.
func TestPoolLifeRealPackagesClean(t *testing.T) {
	for _, dir := range []string{
		"../../internal/core",
		"../../internal/netsim",
		"../../internal/asic",
		"../../internal/endhost",
		"../../internal/inband",
		"../../internal/fabric",
	} {
		fs, err := Dir(dir, PoolLife())
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range fs {
			t.Errorf("%s: %s", dir, f)
		}
	}
}
