package analyzers

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func findingsFor(t *testing.T, dir string) []Finding {
	t.Helper()
	fs, err := Dir(dir, Determinism())
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func count(fs []Finding, analyzer string) int {
	n := 0
	for _, f := range fs {
		if f.Analyzer == analyzer {
			n++
		}
	}
	return n
}

func TestBadFixtureFlagged(t *testing.T) {
	fs := findingsFor(t, "testdata/bad")
	if got := count(fs, "notime"); got != 2 {
		t.Errorf("notime findings = %d, want 2: %v", got, fs)
	}
	if got := count(fs, "norand"); got != 2 {
		t.Errorf("norand findings = %d, want 2: %v", got, fs)
	}
	if got := count(fs, "maporder"); got != 1 {
		t.Errorf("maporder findings = %d, want 1: %v", got, fs)
	}
	// Findings come back sorted by position.
	for i := 1; i < len(fs); i++ {
		if fs[i-1].Pos.Line > fs[i].Pos.Line {
			t.Fatalf("findings unsorted: %v", fs)
		}
	}
}

func TestCleanFixtureSuppressed(t *testing.T) {
	if fs := findingsFor(t, "testdata/clean"); len(fs) != 0 {
		t.Fatalf("clean fixture flagged: %v", fs)
	}
}

func TestAliasResolution(t *testing.T) {
	fs := findingsFor(t, "testdata/aliased")
	if got := count(fs, "notime"); got != 1 {
		t.Fatalf("aliased time import: notime findings = %d, want 1: %v", got, fs)
	}
}

// The determinism invariant holds on the packages whose behavior the
// repeatability tests depend on; a regression here is a real bug, not a
// style nit.
func TestRealPackagesClean(t *testing.T) {
	for _, dir := range []string{
		"../../internal/netsim",
		"../../internal/asic",
		"../../internal/tcpu",
		"../../internal/faults",
		"../../internal/guard",
		"../../internal/core",
		"../../internal/endhost",
		"../../internal/inband",
		"../../internal/fabric",
		"../../internal/fabric/scenario",
		"../../internal/fabric/yamlite",
	} {
		if fs := findingsFor(t, dir); len(fs) != 0 {
			t.Errorf("%s: %v", dir, fs)
		}
	}
}

// The acceptance fixture from the issue: a copy of internal/netsim with
// one time.Now() call added must fail the lint, and the pristine copy
// must pass — the analyzer works on real production code, not just toy
// fixtures.
func TestNetsimWithWallClockFails(t *testing.T) {
	src := "../../internal/netsim"
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(src, name))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, name), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if fs := findingsFor(t, dst); len(fs) != 0 {
		t.Fatalf("pristine netsim copy flagged: %v", fs)
	}

	tainted := `package netsim

import "time"

// wallClock sneaks real time into the simulator.
func wallClock() int64 { return time.Now().UnixNano() }
`
	if err := os.WriteFile(filepath.Join(dst, "zz_tainted.go"), []byte(tainted), 0o644); err != nil {
		t.Fatal(err)
	}
	fs := findingsFor(t, dst)
	if count(fs, "notime") != 1 {
		t.Fatalf("tainted netsim not flagged: %v", fs)
	}
	if !strings.Contains(fs[0].Pos.Filename, "zz_tainted.go") {
		t.Fatalf("finding attributed to wrong file: %v", fs[0])
	}
}
