package analyzers

import (
	"go/ast"
	"go/types"
)

// Determinism returns the analyzer suite enforcing the repository's
// reproducibility invariant: simulations are functions of their inputs
// and seeds, never of wall-clock time, global randomness or map
// iteration order.
func Determinism() []*Analyzer {
	return []*Analyzer{NoTime, NoRand, MapOrder}
}

// NoTime flags wall-clock reads.  Simulated time comes from
// netsim.Sim's virtual clock; time.Now (and the Since/Until sugar over
// it) makes runs unrepeatable.
var NoTime = &Analyzer{
	Name: "notime",
	Doc:  "forbid wall-clock reads (time.Now, time.Since, time.Until)",
	Run: func(p *Pass) {
		forbidden := map[string]bool{"Now": true, "Since": true, "Until": true}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if name, ok := pkgFunc(p.Info, call, "time"); ok && forbidden[name] {
					p.Report(call.Pos(), "time.%s reads the wall clock; use the simulator's virtual clock", name)
				}
				return true
			})
		}
	},
}

// NoRand flags math/rand's global convenience functions, which draw
// from a shared, unseeded source.  Explicitly seeded generators
// (rand.New(rand.NewSource(seed))) are the sanctioned alternative, so
// the constructors stay allowed.
var NoRand = &Analyzer{
	Name: "norand",
	Doc:  "forbid math/rand global functions; construct seeded generators instead",
	Run: func(p *Pass) {
		allowed := map[string]bool{"New": true, "NewSource": true, "NewZipf": true}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				for _, path := range []string{"math/rand", "math/rand/v2"} {
					if name, ok := pkgFunc(p.Info, call, path); ok && !allowed[name] {
						p.Report(call.Pos(), "rand.%s draws from the global source; use a seeded *rand.Rand", name)
					}
				}
				return true
			})
		}
	},
}

// MapOrder flags range statements over maps.  Go randomizes map
// iteration order, so any observable effect of the loop body's order —
// output, event scheduling, error selection — varies run to run.
// Loops whose effect is genuinely order-insensitive carry a
// //lint:allow maporder directive.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "forbid iteration over maps where order can leak into behavior",
	Run: func(p *Pass) {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := p.Info.Types[rng.X]
				if !ok || tv.Type == nil {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					p.Report(rng.Pos(), "map iteration order is random; sort the keys or use a slice")
				}
				return true
			})
		}
	},
}
