# Reproduction of "Tiny Packet Programs for low-latency network
# control and monitoring" (HotNets 2013) on a simulated substrate.

GO        ?= go
BENCH     ?= .
BENCHTIME ?= 1x

.PHONY: all build vet test race check bench bench-json experiments clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the tier-1 gate: vet, build, and the full test suite under
# the race detector.
check: vet build race

# bench runs every benchmark once (BENCHTIME=1x) as a smoke test; set
# BENCHTIME=2s BENCH=PipelineTelemetry for real measurements.
bench:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem -benchtime $(BENCHTIME) .

# bench-json emits the same run in `go test -json` form for tooling.
bench-json:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem -benchtime $(BENCHTIME) -json .

# experiments regenerates every paper artifact with telemetry enabled.
experiments:
	mkdir -p out
	$(GO) run ./cmd/experiments -out out -metrics out/metrics.jsonl -trace out/spans.jsonl all

clean:
	rm -rf out
