# Reproduction of "Tiny Packet Programs for low-latency network
# control and monitoring" (HotNets 2013) on a simulated substrate.

GO        ?= go
BENCH     ?= .
BENCHTIME ?= 1x

.PHONY: all build vet lint test race check soak soak-pooldebug scenario allocgate allocgate-baseline fuzz bench bench-json bench-save reroute experiments clean

# Packages whose behavior must be a pure function of inputs and seeds;
# the determinism analyzers (notime, norand, maporder) gate them.
LINT_PKGS = ./internal/netsim ./internal/asic ./internal/tcpu ./internal/faults ./internal/guard \
	./internal/core ./internal/endhost ./internal/inband ./internal/reflex \
	./internal/fabric ./internal/fabric/scenario ./internal/fabric/yamlite

# Packages that handle pooled packets; the poollife ownership analyzer
# (use-after-Recycle, double-Recycle, retain-without-Adopt,
# recycle-after-shallow-copy) gates them.
POOL_PKGS = ./internal/core ./internal/netsim ./internal/asic ./internal/endhost ./internal/inband \
	./internal/fabric ./internal/reflex

# Packages with //alloc:free hot-path annotations; the escape gate
# pins them against ALLOCGATE.json.
ALLOC_PKGS = ./internal/core ./internal/tcpu ./internal/netsim ./internal/asic ./internal/endhost \
	./internal/reflex

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs vet plus the repository's own analyzers (see
# tools/analyzers): the determinism suite over the simulation core and
# the poollife packet-ownership suite over the packages that handle
# pooled packets.
lint: vet
	$(GO) run ./tools/analyzers/cmd/determinismlint $(LINT_PKGS)
	$(GO) run ./tools/analyzers/cmd/poollifelint $(POOL_PKGS)

# allocgate asserts that every //alloc:free function still compiles
# without heap escapes, pinned against the committed ALLOCGATE.json
# baseline (any drift — regression, improvement, or annotation change —
# fails until the baseline is consciously regenerated).
allocgate:
	$(GO) run ./tools/allocgate $(ALLOC_PKGS)

# allocgate-baseline regenerates ALLOCGATE.json after an audited change
# to the gated functions; commit the result.
allocgate-baseline:
	$(GO) run ./tools/allocgate -write $(ALLOC_PKGS)

# Tests run with -shuffle=on: a deterministic simulation must not care
# what order its tests execute in, and shuffling catches shared-state
# leaks between them.
test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race -shuffle=on ./...

# check is the tier-1 gate: vet, build, and the full test suite under
# the race detector (with shuffled test order).
check: vet build race

# soak runs the composed chaos scenarios verbosely: the crash-restart
# soak (reboots + bursty loss + blackhole + throttling), the
# hostile-tenant isolation soak (forged-write flood vs victim RCP* and
# accounting), and the reflex fast-reroute soak (seeded gray link flaps
# racing a leaf crash-restart against the reflex arm's evidence and
# TCAM writes).  The seeds are pinned inside the tests (1, 7, 42) and
# each runs twice: both runs must produce identical results word for
# word.
soak:
	$(GO) test -run 'TestChaosSoak|TestHostileSoak|TestReflexSoak' -v -count=1 ./internal/chaos

# scenario exercises the fabric control plane end to end: the
# controller/converge/scenario-runner test suites verbosely, the
# fabricctl CLI tests, the root-package proof that fabric-managed state
# stays off the packet hot path, and the converge-under-churn
# experiment (route churn racing crash-restarts, epoch races rolled
# forward under the retry budget).
scenario:
	$(GO) test -v -count=1 ./internal/fabric/... ./cmd/fabricctl
	$(GO) test -run TestFabricControlPlaneOffHotPath -v -count=1 .
	$(GO) run ./cmd/experiments converge

# soak-pooldebug reruns the same scenarios with the packet-pool
# sanitizer compiled in (Recycle poisons buffers and bumps slot
# generations; stale references and clobbered canaries panic at the
# offending call site) under the race detector.
soak-pooldebug:
	$(GO) test -race -tags pooldebug -run 'TestChaosSoak|TestHostileSoak|TestReflexSoak' -v -count=1 ./internal/chaos

# fuzz smoke-tests the three soundness properties: verified programs
# never trip a dynamic fault, guest programs never escape their tenant
# grant (and, verified against it, are never denied), and the compiled
# TPP form is behaviorally identical to the interpreter.
fuzz:
	$(GO) test -fuzz=FuzzVerify -fuzztime=10s ./internal/verify
	$(GO) test -fuzz=FuzzGuard -fuzztime=10s ./internal/asic
	$(GO) test -fuzz=FuzzCompile -fuzztime=10s ./internal/tcpu

# bench runs every benchmark once (BENCHTIME=1x) as a smoke test; set
# BENCHTIME=2s BENCH=PipelineTelemetry for real measurements.
bench:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem -benchtime $(BENCHTIME) .

# bench-json emits the same run in `go test -json` form for tooling.
bench-json:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem -benchtime $(BENCHTIME) -json .

# bench-save runs the benchmarks and commits the measured numbers to
# BENCH_obs.json via tools/benchjson, which fails if any benchmark
# produced no result.  The TCPU execution-path trajectory (interpreter
# vs compiled vs cached, plus the end-to-end pipeline) is carved out of
# the same run into BENCH_tcpu.json.  Set BENCHTIME=2s for
# publication-grade numbers; the default 1x is the smoke/CI setting.
bench-save:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem -benchtime $(BENCHTIME) -json . \
		| $(GO) run ./tools/benchjson -o BENCH_obs.json \
			-extra 'BENCH_tcpu.json=^Benchmark(TCPU|PipelineTelemetry)'

# reroute runs the reflex fast-reroute experiment (dataplane
# sub-RTT repair vs prober-driven controller repair on a killed
# uplink) and refreshes the committed results/reroute.csv.
reroute:
	$(GO) run ./cmd/experiments -out results reroute

# experiments regenerates every paper artifact with telemetry enabled.
experiments:
	mkdir -p out
	$(GO) run ./cmd/experiments -out out -metrics out/metrics.jsonl -trace out/spans.jsonl all

clean:
	rm -rf out
