// Package repro's top-level benchmarks: one benchmark per table and
// figure of the paper (see DESIGN.md §4 for the mapping), plus
// ablations of the design choices DESIGN.md §5 calls out.
//
// Run with: go test -bench=. -benchmem
package repro

import (
	"fmt"
	"testing"

	"repro/internal/asic"
	"repro/internal/core"
	"repro/internal/endhost"
	"repro/internal/mem"
	"repro/internal/microburst"
	"repro/internal/ndb"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/rcp"
	"repro/internal/tcpu"
	"repro/internal/topo"
)

// benchSwitch builds a one-switch network and returns the switch, ready
// for direct TCPU execution through its memory view.
func benchSwitch(tb testing.TB) (*netsim.Sim, *asic.Switch) {
	sim := netsim.New(1)
	n := topo.NewNetwork(sim)
	sw := n.AddSwitch(asic.Config{ID: 7, Ports: 2, TCPU: tcpu.Config{MaxInstructions: 16}})
	h := n.AddHost()
	n.LinkHost(h, sw, topo.Mbps(100, 0))
	sim.RunUntil(netsim.Millisecond)
	return sim, sw
}

// BenchmarkTable1 measures per-instruction TCPU execution cost for
// every opcode of Table 1.
func BenchmarkTable1(b *testing.B) {
	_, sw := benchSwitch(b)
	sramAddr := uint16(mem.SRAMBase + 1)
	qsize := uint16(mem.QueueBase + mem.QueueBytes)
	swID := uint16(mem.SwitchBase + mem.SwitchID)

	cases := []struct {
		name  string
		ins   core.Instruction
		setup func(*core.TPP)
	}{
		{"LOAD", core.Instruction{Op: core.OpLOAD, A: swID, B: 0}, nil},
		{"STORE", core.Instruction{Op: core.OpSTORE, A: sramAddr, B: 0}, nil},
		{"PUSH", core.Instruction{Op: core.OpPUSH, A: qsize}, nil},
		{"POP", core.Instruction{Op: core.OpPOP, A: sramAddr},
			func(t *core.TPP) { t.Ptr = 4 }},
		{"CSTORE", core.Instruction{Op: core.OpCSTORE, A: sramAddr, B: 0}, nil},
		{"CEXEC", core.Instruction{Op: core.OpCEXEC, A: swID, B: 0},
			func(t *core.TPP) { t.SetWord(0, 0xFFFFFFFF); t.SetWord(1, 7) }},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			tpp := core.NewTPP(core.AddrStack, []core.Instruction{c.ins}, 4)
			view := sw.ViewForTesting(nil, 0)
			cfg := tcpu.Config{MaxInstructions: 16}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if c.setup != nil {
					c.setup(tpp)
				} else {
					tpp.Ptr = 0
				}
				res := cfg.Exec(tpp, view)
				if res.Fault != nil {
					b.Fatal(res.Fault)
				}
			}
		})
	}
}

// BenchmarkTable2 measures reading every statistic of the unified
// memory map through a packet view.
func BenchmarkTable2(b *testing.B) {
	_, sw := benchSwitch(b)
	view := sw.ViewForTesting(nil, 0)
	addrs := make([]mem.Addr, 0)
	for _, name := range mem.SymbolNames() {
		a, _ := mem.LookupSymbol(name)
		addrs = append(addrs, a)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, a := range addrs {
			if _, err := view.Load(a); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(addrs)), "stats/op")
}

// BenchmarkFig1 measures a full end-to-end queue-size query: probe
// across three switches plus echo, including all simulation machinery.
func BenchmarkFig1(b *testing.B) {
	sim := netsim.New(1)
	n, src, dst, _ := topo.Line(sim, 3,
		topo.Mbps(1000, 10*netsim.Microsecond),
		topo.Mbps(1000, 10*netsim.Microsecond), asic.Config{})
	n.PrimeL2(5 * netsim.Millisecond)
	prober := endhost.NewProber(src)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		probe := core.NewTPP(core.AddrStack, []core.Instruction{
			{Op: core.OpPUSH, A: uint16(mem.QueueBase + mem.QueueBytes)},
		}, 3)
		done := false
		prober.Probe(dst.MAC, dst.IP, probe, func(*core.TPP) { done = true })
		sim.RunUntil(sim.Now() + 10*netsim.Millisecond)
		if !done {
			b.Fatal("probe lost")
		}
	}
}

// BenchmarkFig2 measures one simulated second of the Figure 2 RCP*
// experiment (three flows, probes, controllers, bottleneck dynamics).
func BenchmarkFig2(b *testing.B) {
	for _, v := range []rcp.Variant{rcp.VariantStar, rcp.VariantBaseline} {
		b.Run(string(v), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := rcp.DefaultFig2Config(v)
				cfg.Duration = netsim.Second
				cfg.FlowStarts = []netsim.Time{0, 0, 0}
				res := rcp.RunFigure2(cfg)
				if len(res.Samples) == 0 {
					b.Fatal("no samples")
				}
			}
		})
	}
}

// BenchmarkFig3 measures the simulated switch pipeline's forwarding
// rate: packets pushed through one switch per wall-clock second.
func BenchmarkFig3(b *testing.B) {
	sim := netsim.New(1)
	n := topo.NewNetwork(sim)
	sw := n.AddSwitch(asic.Config{Ports: 4})
	_ = sw
	h1, h2 := n.AddHost(), n.AddHost()
	h1.NIC.SetCapacity(1 << 20)
	n.LinkHost(h1, sw, topo.Mbps(10_000, 0))
	n.LinkHost(h2, sw, topo.Mbps(10_000, 0))
	n.PrimeL2(netsim.Millisecond)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h1.Send(h1.NewPacket(h2.MAC, h2.IP, 1, 2, 58))
		if i%1024 == 0 {
			sim.RunUntil(sim.Now() + netsim.Millisecond)
		}
	}
	sim.RunUntil(sim.Now() + netsim.Second)
	if h2.Received == 0 {
		b.Fatal("nothing forwarded")
	}
}

// BenchmarkFig4 measures TPP wire-format serialization and parsing (the
// per-packet cost a software dataplane would pay).
func BenchmarkFig4(b *testing.B) {
	for _, k := range []int{1, 5} {
		b.Run(fmt.Sprintf("serialize-%dins", k), func(b *testing.B) {
			ins := make([]core.Instruction, k)
			for i := range ins {
				ins[i] = core.Instruction{Op: core.OpPUSH, A: uint16(mem.QueueBase)}
			}
			tpp := core.NewTPP(core.AddrStack, ins, k*7)
			buf := make([]byte, 0, tpp.WireLen())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf = tpp.AppendTo(buf[:0])
			}
			b.SetBytes(int64(len(buf)))
		})
		b.Run(fmt.Sprintf("parse-%dins", k), func(b *testing.B) {
			ins := make([]core.Instruction, k)
			for i := range ins {
				ins[i] = core.Instruction{Op: core.OpPUSH, A: uint16(mem.QueueBase)}
			}
			wire := core.NewTPP(core.AddrStack, ins, k*7).AppendTo(nil)
			var out core.TPP
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.ParseTPP(wire, &out); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(len(wire)))
		})
	}
}

// BenchmarkFig5 measures TCPU execution of the paper's canonical
// 5-instruction program and reports the modeled hardware cycles.
func BenchmarkFig5(b *testing.B) {
	_, sw := benchSwitch(b)
	ins := make([]core.Instruction, 5)
	for i := range ins {
		ins[i] = core.Instruction{Op: core.OpPUSH, A: uint16(mem.QueueBase + mem.QueueBytes)}
	}
	view := sw.ViewForTesting(nil, 0)
	cfg := tcpu.Config{MaxInstructions: 16}
	tpp := core.NewTPP(core.AddrStack, ins, 5)
	var cycles int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tpp.Ptr = 0
		res := cfg.Exec(tpp, view)
		if res.Fault != nil {
			b.Fatal(res.Fault)
		}
		cycles = res.Cycles
	}
	b.ReportMetric(float64(cycles), "modeled-cycles")
}

// BenchmarkMicroburst measures the §2.1 detector on a pre-generated
// telemetry stream.
func BenchmarkMicroburst(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := microburst.NewDetector(10_000, 10*netsim.Millisecond)
		for s := 0; s < 10_000; s++ {
			q := uint32(0)
			if s%100 < 10 {
				q = 50_000 // burst every 100 samples
			}
			d.Observe(netsim.Time(s)*netsim.Microsecond*100, q)
		}
		if len(d.Episodes()) == 0 {
			b.Fatal("no episodes")
		}
	}
}

// BenchmarkNdb measures trace parsing plus policy verification for one
// 5-hop journey.
func BenchmarkNdb(b *testing.B) {
	tpp := ndb.TraceProgram(5)
	for w := 0; w < 20; w++ {
		tpp.SetWord(w, uint32(w))
	}
	tpp.Ptr = 80
	want := make([]ndb.Expectation, 5)
	trace := ndb.ParseTrace(tpp)
	for i, h := range trace {
		want[i] = ndb.Expectation{SwitchID: h.SwitchID, EntryID: h.EntryID,
			EntryVersion: h.EntryVersion}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := ndb.ParseTrace(tpp)
		if v := ndb.Verify(tr, want); len(v) != 0 {
			b.Fatal("unexpected violations")
		}
	}
}

// BenchmarkPipelineTelemetry measures the per-packet cost of the
// telemetry subsystem: a TPP-instrumented packet through one switch
// with metrics+tracing disabled (nil handles, the zero-cost contract —
// TestTelemetryDisabledNoExtraAllocs pins the exact allocation count)
// and enabled (atomic counters, histogram observes, span records, and
// per-instruction TCPU spans).
func BenchmarkPipelineTelemetry(b *testing.B) {
	run := func(b *testing.B, reg *obs.Registry, tr *obs.Tracer) {
		sim := netsim.New(1)
		n := topo.NewNetwork(sim)
		sw := n.AddSwitch(asic.Config{Ports: 4, Metrics: reg, Trace: tr})
		_ = sw
		h1, h2 := n.AddHost(), n.AddHost()
		h1.NIC.SetCapacity(1 << 20)
		n.LinkHost(h1, sw, topo.Mbps(10_000, 0))
		n.LinkHost(h2, sw, topo.Mbps(10_000, 0))
		n.PrimeL2(netsim.Millisecond)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pkt := h1.NewPacket(h2.MAC, h2.IP, 1, 2, 58)
			microburst.Instrument(pkt, 4)
			h1.Send(pkt)
			if i%1024 == 0 {
				sim.RunUntil(sim.Now() + netsim.Millisecond)
			}
		}
		sim.RunUntil(sim.Now() + netsim.Second)
		if h2.Received == 0 {
			b.Fatal("nothing forwarded")
		}
	}
	b.Run("disabled", func(b *testing.B) { run(b, nil, nil) })
	b.Run("enabled", func(b *testing.B) {
		run(b, obs.NewRegistry(), obs.NewTracer(1<<20))
	})
}

// BenchmarkTCPU isolates program execution cost on one switch's memory
// view (DESIGN.md §13): the interpreter, the compiled form, and the
// compiled form reached through the ingress cache the way a switch
// actually reaches it (lookup included).  These three are the perf
// trajectory committed to BENCH_tcpu.json.
func BenchmarkTCPU(b *testing.B) {
	_, sw := benchSwitch(b)
	view := sw.ViewForTesting(nil, 0)
	cfg := tcpu.Config{MaxInstructions: 16}
	swID := uint16(mem.SwitchBase + mem.SwitchID)
	qsize := uint16(mem.QueueBase + mem.QueueBytes)
	tpp := core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpPUSH, A: swID},
		{Op: core.OpPUSH, A: qsize},
		{Op: core.OpPUSH, A: swID},
		{Op: core.OpPUSH, A: qsize},
		{Op: core.OpPUSH, A: swID},
	}, 40)

	b.Run("interpret", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tpp.Ptr, tpp.Flags = 0, 0
			if r := cfg.Exec(tpp, view); r.Fault != nil {
				b.Fatal(r.Fault)
			}
		}
	})
	b.Run("compiled", func(b *testing.B) {
		p := tcpu.Compile(cfg, tpp)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tpp.Ptr, tpp.Flags = 0, 0
			if r := p.Exec(tpp, view); r.Fault != nil {
				b.Fatal(r.Fault)
			}
		}
	})
	b.Run("compiled-cached", func(b *testing.B) {
		cache := tcpu.NewCache(cfg, tcpu.DefaultCacheCapacity)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tpp.Ptr, tpp.Flags = 0, 0
			p := cache.Get(tpp)
			if p == nil {
				b.Fatal("cache refused program")
			}
			if r := p.Exec(tpp, view); r.Fault != nil {
				b.Fatal(r.Fault)
			}
		}
	})
}

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblationAddressingMode compares stack against hop addressing
// for the same per-hop record size.
func BenchmarkAblationAddressingMode(b *testing.B) {
	_, sw := benchSwitch(b)
	view := sw.ViewForTesting(nil, 0)
	cfg := tcpu.Config{MaxInstructions: 16}
	qsize := uint16(mem.QueueBase + mem.QueueBytes)
	swID := uint16(mem.SwitchBase + mem.SwitchID)

	b.Run("stack", func(b *testing.B) {
		tpp := core.NewTPP(core.AddrStack, []core.Instruction{
			{Op: core.OpPUSH, A: swID},
			{Op: core.OpPUSH, A: qsize},
		}, 14)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tpp.Ptr = 0
			if res := cfg.Exec(tpp, view); res.Fault != nil {
				b.Fatal(res.Fault)
			}
		}
	})
	b.Run("hop", func(b *testing.B) {
		tpp := core.NewTPP(core.AddrHop, []core.Instruction{
			{Op: core.OpLOAD, A: swID, B: 0},
			{Op: core.OpLOAD, A: qsize, B: 1},
		}, 14)
		tpp.HopLen = 8
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tpp.Ptr = 0
			if res := cfg.Exec(tpp, view); res.Fault != nil {
				b.Fatal(res.Fault)
			}
		}
	})
}

// BenchmarkAblationCSTOREContention measures the linearizable CSTORE
// path under concurrent writers hammering one switch word.
func BenchmarkAblationCSTOREContention(b *testing.B) {
	_, sw := benchSwitch(b)
	cfg := tcpu.Config{MaxInstructions: 16}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		view := sw.ViewForTesting(nil, 0)
		tpp := core.NewTPP(core.AddrStack, []core.Instruction{
			{Op: core.OpCSTORE, A: uint16(mem.SRAMBase + 2), B: 0},
		}, 3)
		for pb.Next() {
			if res := cfg.Exec(tpp, view); res.Fault != nil {
				b.Fatal(res.Fault)
			}
		}
	})
}

// BenchmarkAblationInBandOverhead quantifies the goodput cost of
// instrumenting every data packet with the §2.1 telemetry TPP, the
// trade the paper's 20-byte overhead figure is about.
func BenchmarkAblationInBandOverhead(b *testing.B) {
	run := func(instrument bool) float64 {
		sim := netsim.New(1)
		n := topo.NewNetwork(sim)
		sw := n.AddSwitch(asic.Config{Ports: 4})
		h1, h2 := n.AddHost(), n.AddHost()
		h1.NIC.SetCapacity(1 << 16)
		n.LinkHost(h1, sw, topo.Mbps(10, 0))
		n.LinkHost(h2, sw, topo.Mbps(10, 0))
		n.PrimeL2(netsim.Millisecond)
		var payload uint64
		h2.HandleDefault(func(p *core.Packet) { payload += uint64(p.PayloadLen()) })
		// Offer more than the link can carry in the window, so the
		// measured goodput is limited by wire overhead, not demand.
		for i := 0; i < 6000; i++ {
			pkt := h1.NewPacket(h2.MAC, h2.IP, 1, 2, 958)
			if instrument {
				microburst.Instrument(pkt, 5)
			}
			h1.Send(pkt)
		}
		start := sim.Now()
		sim.RunUntil(sim.Now() + 3*netsim.Second)
		return float64(payload) / (sim.Now() - start).Seconds()
	}
	b.Run("plain", func(b *testing.B) {
		var g float64
		for i := 0; i < b.N; i++ {
			g = run(false)
		}
		b.ReportMetric(g*8/1e6, "goodput-Mbps")
	})
	b.Run("instrumented", func(b *testing.B) {
		var g float64
		for i := 0; i < b.N; i++ {
			g = run(true)
		}
		b.ReportMetric(g*8/1e6, "goodput-Mbps")
	})
}

// BenchmarkAblationAggregationVsRecords compares the §2.1 per-hop
// record probe against INT-style in-packet MAX aggregation: the
// aggregate needs one word of packet memory for any path length, at the
// cost of losing the per-hop breakdown.
func BenchmarkAblationAggregationVsRecords(b *testing.B) {
	_, sw := benchSwitch(b)
	view := sw.ViewForTesting(nil, 0)
	cfg := tcpu.Config{MaxInstructions: 16}
	qsize := uint16(mem.QueueBase + mem.QueueBytes)

	b.Run("per-hop-records", func(b *testing.B) {
		tpp := core.NewTPP(core.AddrStack, []core.Instruction{
			{Op: core.OpPUSH, A: qsize},
		}, 7) // one word per hop, 7-hop budget
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tpp.Ptr = 0
			if res := cfg.Exec(tpp, view); res.Fault != nil {
				b.Fatal(res.Fault)
			}
		}
		b.ReportMetric(float64(tpp.WireLen()), "wire-bytes")
	})
	b.Run("max-aggregate", func(b *testing.B) {
		tpp := core.NewTPP(core.AddrStack, []core.Instruction{
			{Op: core.OpMAX, A: qsize, B: 0},
		}, 1) // one word total, any path length
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if res := cfg.Exec(tpp, view); res.Fault != nil {
				b.Fatal(res.Fault)
			}
		}
		b.ReportMetric(float64(tpp.WireLen()), "wire-bytes")
	})
}
