package repro

import (
	"testing"

	"repro/internal/asic"
	"repro/internal/fabric"
	"repro/internal/netsim"
	"repro/internal/topo"
)

// TestFabricControlPlaneOffHotPath pins the separation the fabric
// controller promises: everything it manages — band TCAM routes, guard
// grants, allocator-backed services — is installed from the control
// plane, and forwarding through that state costs the data plane
// nothing.  The send+drain cycle stays at the same <=2 allocation
// budget as TestTelemetryDisabledNoExtraAllocs (packet construction
// only), both right after convergence and again after a full Verify +
// ReadState pass has walked the live device state between bursts.
func TestFabricControlPlaneOffHotPath(t *testing.T) {
	sim := netsim.New(1)
	n := topo.NewNetwork(sim)
	sw := n.AddSwitch(asic.Config{Ports: 4, Guard: true})
	h1, h2 := n.AddHost(), n.AddHost()
	h1.NIC.SetCapacity(1 << 20)
	n.LinkHost(h1, sw, topo.Mbps(10_000, 0))
	n.LinkHost(h2, sw, topo.Mbps(10_000, 0))
	n.PrimeL2(netsim.Millisecond)

	ctl := fabric.New(sim)
	ctl.Register("edge", sw)
	spec := fabric.Spec{Devices: []fabric.DeviceSpec{{
		Device:   "edge",
		Tenants:  []fabric.Tenant{{ID: 3, Policy: fabric.PolicyDefault, Words: 64, Weight: 10, Burst: 16}},
		Services: []fabric.Service{{Name: "rcp", Words: 8, Seed: []uint32{1250000}}},
		Routes: []fabric.Route{
			{DstIP: h2.IP, Priority: 100, OutPort: n.AttachmentOf(h2).Port},
		},
	}}}
	var res fabric.ConvergeResult
	ctl.Converge(spec, fabric.ConvergeConfig{}, func(r fabric.ConvergeResult) { res = r })
	if !res.Converged {
		t.Fatalf("provision did not converge: %+v", res)
	}

	measure := func(when string) {
		t.Helper()
		allocs := testing.AllocsPerRun(200, func() {
			h1.Send(h1.NewPacket(h2.MAC, h2.IP, 1, 2, 58))
			sim.RunUntil(sim.Now() + netsim.Millisecond)
		})
		if allocs > 2 {
			t.Fatalf("%s: %.1f allocs per packet through fabric-managed state, want <= 2 (packet construction only)", when, allocs)
		}
	}

	measure("after converge")
	if h2.Received == 0 {
		t.Fatal("nothing forwarded through the fabric-managed route")
	}

	// A control-plane pass between bursts — the field-by-field Verify
	// read-back plus a full state snapshot — must leave the hot path
	// untouched.
	if errs := ctl.Verify(spec); len(errs) > 0 {
		t.Fatalf("live state off spec between bursts: %v", errs)
	}
	if _, derr := ctl.ReadState("edge"); derr != nil {
		t.Fatalf("ReadState: %v", derr)
	}
	measure("after Verify/ReadState")
}
