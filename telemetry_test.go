package repro

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/asic"
	"repro/internal/microburst"
	"repro/internal/ndb"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/topo"
)

// TestTelemetryEndToEnd drives a TPP-instrumented packet across a
// two-switch line with the telemetry subsystem enabled and checks the
// tentpole artifacts together: a reconstructable per-hop span journey,
// a metrics snapshot carrying queue-depth and TCPU-cycle histograms,
// and snapshot diffing across a traffic window.
func TestTelemetryEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer(1 << 18)
	sim := netsim.New(1)
	link := topo.Mbps(1000, 10*netsim.Microsecond)
	n, src, dst, sws := topo.Line(sim, 2, link, link,
		asic.Config{Metrics: reg, Trace: tr})
	n.PrimeL2(5 * netsim.Millisecond)

	before := reg.Snapshot(int64(sim.Now()))

	// Background traffic plus one instrumented packet whose lifecycle
	// we reconstruct.
	const background = 50
	for i := 0; i < background; i++ {
		src.Send(src.NewPacket(dst.MAC, dst.IP, 7, 8, 200))
	}
	probe := src.NewPacket(dst.MAC, dst.IP, 7, 9, 64)
	microburst.Instrument(probe, 4)
	uid := probe.Meta.UID
	src.Send(probe)
	sim.RunUntil(sim.Now() + netsim.Second)

	after := reg.Snapshot(int64(sim.Now()))

	// The span journey reconstructs the per-hop path: two hops, in
	// switch order, time-ordered, with every pipeline stage present on
	// each switch and the links in between.
	journey := tr.Journey(uid)
	if len(journey) == 0 {
		t.Fatal("no span events recorded for the probe UID")
	}
	for i := 1; i < len(journey); i++ {
		if journey[i].At < journey[i-1].At {
			t.Fatalf("journey out of order at %d: %v after %v",
				i, journey[i].At, journey[i-1].At)
		}
	}
	hops := ndb.JourneyFromSpans(journey)
	if len(hops) != 2 {
		t.Fatalf("reconstructed %d hops, want 2: %+v", len(hops), hops)
	}
	if hops[0].SwitchID != sws[0].ID() || hops[1].SwitchID != sws[1].ID() {
		t.Fatalf("hop switches = %d,%d; want %d,%d",
			hops[0].SwitchID, hops[1].SwitchID, sws[0].ID(), sws[1].ID())
	}
	stageCount := map[obs.Stage]int{}
	for _, ev := range journey {
		stageCount[ev.Stage]++
	}
	for _, st := range []obs.Stage{obs.StageParser, obs.StageTCPU,
		obs.StageMemMgr, obs.StageEnqueue, obs.StageSched} {
		if stageCount[st] < 2 {
			t.Fatalf("stage %v seen %d times, want one per switch", st, stageCount[st])
		}
	}
	// src->sw1, sw1->sw2, sw2->dst: three serializations minimum.
	if stageCount[obs.StageLinkTx] < 3 || stageCount[obs.StageLinkRx] < 3 {
		t.Fatalf("link spans tx=%d rx=%d, want >=3 each",
			stageCount[obs.StageLinkTx], stageCount[obs.StageLinkRx])
	}

	// The snapshot carries populated queue-depth and TCPU-cycle
	// histograms.
	var queueDepth, tcpuCycles uint64
	for _, m := range after.Metrics {
		switch {
		case strings.HasSuffix(m.Name, "/queue_depth_bytes"):
			queueDepth += m.Count
		case strings.HasSuffix(m.Name, "/tcpu_cycles"):
			tcpuCycles += m.Count
		}
	}
	if queueDepth == 0 {
		t.Fatal("no queue_depth_bytes samples in snapshot")
	}
	if tcpuCycles == 0 {
		t.Fatal("no tcpu_cycles samples in snapshot")
	}

	// Diff isolates the traffic window: every sent packet crossed the
	// first switch (echo traffic can only add to it).
	d, ok := obs.Diff(before, after).Get(fmt.Sprintf("switch/%d/packets", sws[0].ID()))
	if !ok {
		t.Fatal("packets counter missing from diff")
	}
	if d.Value < background+1 {
		t.Fatalf("diff shows %d packets at switch %d, want >= %d",
			d.Value, sws[0].ID(), background+1)
	}
}

// TestTelemetryDisabledNoExtraAllocs pins the zero-cost contract: with
// no Metrics/Trace configured every obs handle is nil and the fabric
// (NIC -> switch -> NIC) never allocates.  The only allocations per
// send+drain cycle are the sender's two packet-construction blocks
// (the packet block and the TPP-less payload handling in NewPacket);
// the seed needed 20.
func TestTelemetryDisabledNoExtraAllocs(t *testing.T) {
	sim := netsim.New(1)
	n := topo.NewNetwork(sim)
	sw := n.AddSwitch(asic.Config{Ports: 4})
	h1, h2 := n.AddHost(), n.AddHost()
	h1.NIC.SetCapacity(1 << 20)
	n.LinkHost(h1, sw, topo.Mbps(10_000, 0))
	n.LinkHost(h2, sw, topo.Mbps(10_000, 0))
	n.PrimeL2(netsim.Millisecond)

	allocs := testing.AllocsPerRun(200, func() {
		h1.Send(h1.NewPacket(h2.MAC, h2.IP, 1, 2, 58))
		sim.RunUntil(sim.Now() + netsim.Millisecond)
	})
	if allocs > 2 {
		t.Fatalf("disabled telemetry path: %.1f allocs per packet, want <= 2 (packet construction only)", allocs)
	}
	if h2.Received == 0 {
		t.Fatal("nothing forwarded")
	}
}
