// RCP* example: reproduce Figure 2 of the paper — three flows joining a
// 10 Mb/s bottleneck at t=0, 10 and 20 seconds, rate-controlled
// entirely from the end-hosts with TPPs, next to the native in-switch
// RCP baseline.
//
//	go run ./examples/rcpstar
package main

import (
	"fmt"
	"strings"

	"repro/internal/rcp"
)

func main() {
	fmt.Println("Figure 2: R(t)/C on the bottleneck (x: time, 30s; y: R/C)")
	for _, v := range []rcp.Variant{rcp.VariantStar, rcp.VariantBaseline} {
		res := rcp.RunFigure2(rcp.DefaultFig2Config(v))
		fmt.Printf("\n%s:\n", label(v))
		plot(res)
		fmt.Printf("plateau means: %.3f (1 flow)  %.3f (2 flows)  %.3f (3 flows)\n",
			res.MeanROverC(5, 10), res.MeanROverC(15, 20), res.MeanROverC(25, 30))
	}
	fmt.Println("\nideal fair shares: 1.000, 0.500, 0.333 — both variants converge within ~1s of each join")
}

func label(v rcp.Variant) string {
	if v == rcp.VariantStar {
		return "RCP* (TPP + end-host, §2.2)"
	}
	return "native RCP (in-switch baseline)"
}

// plot renders a coarse ASCII chart of R(t)/C.
func plot(res rcp.Fig2Result) {
	const rows, cols = 12, 60
	grid := make([][]byte, rows)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", cols))
	}
	for _, s := range res.Samples {
		x := int(s.T / 30 * cols)
		y := int((1 - s.ROverC) * (rows - 1))
		if x >= 0 && x < cols && y >= 0 && y < rows {
			grid[y][x] = '*'
		}
	}
	for i, row := range grid {
		yval := 1 - float64(i)/(rows-1)
		fmt.Printf("%5.2f |%s|\n", yval, string(row))
	}
	fmt.Printf("      0s%ss\n", strings.Repeat(" ", cols-4)+"30")
}
