// Micro-burst example (§2.1): an 8-to-1 incast produces millisecond
// bursts that per-packet TPP telemetry catches and 1-second polling
// misses entirely.
//
//	go run ./examples/microburst
package main

import (
	"fmt"
	"strings"

	"repro/internal/microburst"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/trace"
)

func main() {
	cfg := microburst.DefaultConfig()
	cfg.Metrics = obs.NewRegistry()
	res := microburst.Run(cfg)

	fmt.Printf("workload: %d senders x %d bytes, %d bursts, one every %v\n\n",
		cfg.Senders, cfg.BurstBytes, cfg.Bursts, cfg.Period)

	fmt.Printf("TPP telemetry:  %d samples, %d/%d bursts detected (peak queue %d bytes)\n",
		res.TelemetrySamples, len(res.Episodes), res.BurstsGenerated, res.TelemetryPeak)
	fmt.Printf("1s polling:     %d polls,   %d/%d bursts detected (peak queue %d bytes)\n\n",
		res.PollerPolls, res.PollerDetections, res.BurstsGenerated, res.PollerPeak)

	fmt.Println("first detected episodes:")
	for i, e := range res.Episodes {
		if i >= 5 {
			fmt.Printf("  ... and %d more\n", len(res.Episodes)-5)
			break
		}
		fmt.Printf("  t=%.3fs  duration=%6.0fus  peak=%6d bytes  (%d samples)\n",
			netsim.Time(e.Start).Seconds(),
			float64(e.Duration())/float64(netsim.Microsecond), e.Peak, e.Samples)
	}
	fmt.Printf("\nmean burst duration %.0fus: three orders of magnitude below the polling interval\n",
		res.MeanEpisodeUs)

	// The full occupancy distribution, not just the peak: per-packet
	// telemetry yields enough samples for meaningful percentiles.
	h := res.QueueDepth
	fmt.Printf("\nqueue-depth distribution (%d samples, p50=%d p99=%d max=%d bytes):\n",
		h.Count(), h.Quantile(0.50), h.Quantile(0.99), h.Max())
	tb := trace.NewTable("bucket (bytes)", "count", "share")
	for i := 0; i < obs.NumBuckets; i++ {
		n := h.Bucket(i)
		if n == 0 {
			continue
		}
		lo, hi := obs.BucketLow(i), obs.BucketHigh(i)
		tb.Row(fmt.Sprintf("[%d, %d]", lo, hi), n,
			fmt.Sprintf("%.1f%%", 100*float64(n)/float64(h.Count())))
	}
	fmt.Print(indent(tb.String(), "  "))
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = prefix + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}
