// Micro-burst example (§2.1): an 8-to-1 incast produces millisecond
// bursts that per-packet TPP telemetry catches and 1-second polling
// misses entirely.
//
//	go run ./examples/microburst
package main

import (
	"fmt"

	"repro/internal/microburst"
	"repro/internal/netsim"
)

func main() {
	cfg := microburst.DefaultConfig()
	res := microburst.Run(cfg)

	fmt.Printf("workload: %d senders x %d bytes, %d bursts, one every %v\n\n",
		cfg.Senders, cfg.BurstBytes, cfg.Bursts, cfg.Period)

	fmt.Printf("TPP telemetry:  %d samples, %d/%d bursts detected (peak queue %d bytes)\n",
		res.TelemetrySamples, len(res.Episodes), res.BurstsGenerated, res.TelemetryPeak)
	fmt.Printf("1s polling:     %d polls,   %d/%d bursts detected (peak queue %d bytes)\n\n",
		res.PollerPolls, res.PollerDetections, res.BurstsGenerated, res.PollerPeak)

	fmt.Println("first detected episodes:")
	for i, e := range res.Episodes {
		if i >= 5 {
			fmt.Printf("  ... and %d more\n", len(res.Episodes)-5)
			break
		}
		fmt.Printf("  t=%.3fs  duration=%6.0fus  peak=%6d bytes  (%d samples)\n",
			netsim.Time(e.Start).Seconds(),
			float64(e.Duration())/float64(netsim.Microsecond), e.Peak, e.Samples)
	}
	fmt.Printf("\nmean burst duration %.0fus: three orders of magnitude below the polling interval\n",
		res.MeanEpisodeUs)
}
