// Accounting example (§2.2's consistency discussion): three hosts
// concurrently increment a shared counter in switch SRAM through the
// network.  With CSTORE the tally is exact; with a blind
// read-modify-write, concurrent updates vanish.
//
//	go run ./examples/accounting
package main

import (
	"fmt"

	"repro/internal/accounting"
	"repro/internal/agent"
	"repro/internal/asic"
	"repro/internal/endhost"
	"repro/internal/mem"
	"repro/internal/netsim"
	"repro/internal/topo"
)

const (
	writers       = 3
	incsPerWriter = 50
)

func main() {
	for _, proto := range []accounting.Protocol{accounting.Atomic, accounting.Racy} {
		final, retries := run(proto)
		name := "CSTORE (linearizable)"
		if proto == accounting.Racy {
			name = "LOAD+STORE (racy)   "
		}
		fmt.Printf("%s  final=%3d of %d", name, final, writers*incsPerWriter)
		if proto == accounting.Atomic {
			fmt.Printf("  (%d retries resolved every conflict)", retries)
		} else {
			fmt.Printf("  (%d updates silently lost)", writers*incsPerWriter-int(final))
		}
		fmt.Println()
	}
}

func run(proto accounting.Protocol) (final uint32, retries uint64) {
	sim := netsim.New(1)
	n := topo.NewNetwork(sim)
	sw := n.AddSwitch(asic.Config{ID: 5, Ports: 8})

	var hosts []*endhost.Host
	var probers []*endhost.Prober
	for i := 0; i < writers; i++ {
		h := n.AddHost()
		n.LinkHost(h, sw, topo.Mbps(100, 50*netsim.Microsecond))
		hosts = append(hosts, h)
		probers = append(probers, endhost.NewProber(h))
	}
	target := n.AddHost()
	n.LinkHost(target, sw, topo.Mbps(100, 50*netsim.Microsecond))
	n.PrimeL2(5 * netsim.Millisecond)

	// The control-plane agent carves out the counter's SRAM word.
	ag := agent.New(sw)
	task, err := ag.Register("accounting", 1, 0)
	if err != nil {
		panic(err)
	}

	counters := make([]*accounting.Counter, writers)
	for i := range hosts {
		c := accounting.NewCounter(probers[i], target.MAC, target.IP,
			sw.ID(), task.Region.Base, proto)
		counters[i] = c
		remaining := incsPerWriter
		var next func(uint32)
		next = func(uint32) {
			remaining--
			if remaining > 0 {
				c.Add(1, next)
			}
		}
		c.Add(1, next)
	}
	sim.RunUntil(sim.Now() + 30*netsim.Second)

	for _, c := range counters {
		retries += c.Retries
	}
	return sw.SRAM(mem.SRAMIndex(task.Region.Base)), retries
}
