// Network debugger example (§2.3): TPP traces verify that the dataplane
// matches the controller's intent, and catch a rule that changed in
// hardware underneath the controller.
//
//	go run ./examples/netdebugger
package main

import (
	"fmt"

	"repro/internal/ndb"
)

func main() {
	res := ndb.Run(ndb.DefaultConfig())

	fmt.Println("phase 1: conforming 2x2 leaf-spine fabric")
	fmt.Printf("  %d packet journeys verified, %d violations\n\n",
		res.CleanTraces, res.CleanViolations)

	fmt.Println("phase 2: a leaf's flow entry is rerouted in hardware (controller unaware)")
	fmt.Printf("  %d journeys flagged:\n", res.BadTraces)
	for kind, count := range res.ViolationKinds {
		fmt.Printf("    %-14s x%d\n", kind, count)
	}
	if len(res.BadViolations) > 0 {
		fmt.Printf("  example: %s\n\n", res.BadViolations[0])
	}

	fmt.Println("overhead for the same visibility:")
	fmt.Printf("  TPP traces:      0 extra packets, %d bytes carried in-band\n", res.TPPInBandBytes)
	fmt.Printf("  ndb copies:      %d extra packets, %d extra bytes on the network\n",
		res.BaselineCopies, res.BaselineCopyBytes)
	fmt.Printf("  journeys agree:  %v\n", res.JourneysAgree)
}
