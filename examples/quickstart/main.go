// Quickstart: assemble a tiny packet program, send it across a small
// simulated network, and read back what the switches wrote into it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/asic"
	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/endhost"
	"repro/internal/netsim"
	"repro/internal/topo"
)

func main() {
	// 1. A deterministic simulated network: two hosts at the ends of
	//    three switches (the Figure 1 walk).
	sim := netsim.New(42)
	net, src, dst, _ := topo.Line(sim,
		3,                                    // switches
		topo.Mbps(80, 10*netsim.Microsecond), // host links
		topo.Mbps(8, 10*netsim.Microsecond),  // switch-switch links
		asic.Config{})
	net.PrimeL2(5 * netsim.Millisecond) // let the MAC tables learn

	// 2. A tiny packet program, in the paper's assembly syntax: record
	//    the switch id and the egress queue occupancy at every hop.
	prog, err := asm.Assemble(`
		.mem 6                   # 2 words/hop x 3 hops
		PUSH [Switch:SwitchID]
		PUSH [Queue:QueueSize]
	`)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Some cross traffic, so there is a queue to observe.
	for i := 0; i < 20; i++ {
		src.Send(src.NewPacket(dst.MAC, dst.IP, 5000, 5001, 986))
	}

	// 4. Probe: the TPP rides to dst, executing on every switch; dst
	//    echoes the executed program back.
	prober := endhost.NewProber(src)
	var echoed *core.TPP
	prober.Probe(dst.MAC, dst.IP, prog.TPP, func(e *core.TPP) { echoed = e })
	sim.RunUntil(sim.Now() + netsim.Second)
	if echoed == nil {
		log.Fatal("probe lost")
	}

	// 5. Interpret the packet memory: the end-host knows the layout it
	//    allocated.
	fmt.Println("hop  switch  queue(bytes)")
	for hop := 0; hop < int(echoed.Ptr)/8; hop++ {
		fmt.Printf("%3d  %6d  %12d\n", hop+1, echoed.Word(2*hop), echoed.Word(2*hop+1))
	}
}
